(** Static protocol verifier: an abstract interpreter over workload
    traces.

    The runtime sanitizers (UV01-UV08) only catch a pin-protocol
    violation when a particular simulated run happens to trip it. This
    pass symbolically executes a {!Utlb_trace.Record} stream against
    the declared engine semantics {e before} any simulation, tracking
    an abstract pin-state lattice per (process, page) —
    [Garbage <= Pinned _ <= Top], with [Unpinned] for pages a process
    removal provably released — plus a per-process
    \[lo, hi\] interval on the pinned-page population, and reports
    traces that must or may violate the protocol with stable UP0x
    codes ({!Catalogue.protocol}):

    - [UP01] {e pin balance vs memory limit} (must, hier/intr with a
      limit): a buffer larger than the limit forces the engine to hold
      more pinned pages than the limit allows — in-flight pages are
      protected from eviction, so the declared limit is broken;
    - [UP02] {e garbage-frame reuse} (must): the buffer extends past
      the translation table, so the NI would translate through entries
      that do not exist — the garbage-frame scheme dereferences
      garbage, and {!Utlb.Translation_table} aborts the run;
    - [UP03] {e DMA into unpinned memory} (must, intr): a buffer wider
      than the Shared UTLB-Cache self-conflicts by pigeonhole; under
      cached <=> pinned, filling the tail evicts — and {e unpins} —
      the head while its transfer is in flight (static UV03/UV05);
    - [UP04] {e table-capacity overflow} (must, per-process): more
      distinct processes than carved tables, or a buffer wider than
      one table share — the whole span is protected, so eviction
      cannot free an index and the engine aborts;
    - [UP05] {e NI-cache/host-table divergence window} (may, hier):
      the buffer fits the memory limit but its pre-pin window does
      not, so freshly pre-pinned pages may be unpinned — and their NI
      entries invalidated — while the same miss's prefetch is
      streaming them (the hazard UV04/UV05 guard at runtime);
    - [UP00] a trace line that does not parse ({!verify_file} only).

    Must-findings are [Error], may-findings are [Warning]; both carry
    the 1-based trace line number. *)

type model =
  | Hier of {
      entries : int;  (** Shared UTLB-Cache entries. *)
      prefetch : int;
      prepin : int;
      limit_pages : int option;  (** Per-process pinned-page limit. *)
    }
  | Intr of { entries : int; limit_pages : int option }
  | Per_process of { processes : int; entries_per_process : int }

type semantics = { model : model; label : string }

val of_config : Config_file.t -> semantics
(** Declared semantics of a parsed configuration (the engine selection
    plus the capacity parameters the abstract transfer functions
    need). *)

val of_mech :
  name:string -> params:(string * string) list -> (semantics, string) result
(** Semantics of a campaign mechanism point, mirroring the
    {!Utlb.Sim_driver.Registry} parameter names and defaults
    ([entries], [prefetch], [prepin], [limit-mb], [budget],
    [processes]). [Error] on an unknown mechanism or a malformed
    integer parameter. *)

val defaults : semantics list
(** The three paper-default engines ({!of_config} of
    {!Config_file.default} per engine selection). *)

(** {2 Abstract state} *)

type page = Garbage | Pinned of int | Unpinned | Top
(** Per-(process, page) lattice value: [Garbage] — the table entry
    holds the garbage frame (initial, or after an invalidation);
    [Pinned n] — pinned with count [n]; [Unpinned] — provably released
    by a process removal; [Top] — unknown (a possible replacement
    victim). *)

type state

val init : model -> state

val step : state -> line:int -> Utlb_trace.Record.t -> Finding.t list
(** Abstractly execute one record: admission and capacity checks, then
    the span (and, for hier, its pre-pin window) joins into the page
    lattice and the \[lo, hi\] pinned interval; a population bound
    overflow demotes possible victims to [Top]. Returned findings
    carry [line] but no context (the driver adds it). *)

val page_state : state -> pid:int -> vpn:int -> page

val pinned_interval : state -> pid:int -> int * int
(** Bounds on the process's pinned-page population ([0, 0] for a
    process the trace never mentioned). *)

(** {2 Drivers} *)

val verify_records :
  ?context:string -> semantics -> (int * Utlb_trace.Record.t) list ->
  Finding.t list
(** Run {!step} over [(line, record)] pairs in order and collect
    findings, stamping [context]. *)

val verify_trace :
  ?context:string -> semantics -> Utlb_trace.Trace.t -> Finding.t list
(** {!verify_records} over a generated trace, lines numbered from 1 in
    record order. *)

val verify_file : semantics -> string -> (Finding.t list, string) result
(** Verify a saved trace file: blank and [#] lines are skipped,
    unparseable records become UP00 findings (real line numbers), and
    parsed records run through {!step}. [Error] only when the file
    cannot be read. *)

val verify_workload :
  ?seed:int64 -> semantics -> Utlb_trace.Workloads.spec -> Finding.t list
(** Generate the workload's trace (default seed
    {!Utlb.Sim_driver.default_seed}, the seed [utlbsim run] uses) and
    verify it; context is ["workload/mechanism"]. *)

val verify_grid : Utlb_exp.Grid.t -> Finding.t list
(** Verify every cell of a campaign: each workload trace is generated
    once (grid seed, as {!Utlb_exp.Runner} does) and checked against
    each mechanism point's {!of_mech} semantics; verdicts are computed
    once per distinct (trace, model) pair but reported per cell, with
    the cell label as context. A mechanism {!of_mech} cannot model
    becomes a UP00 finding. *)
