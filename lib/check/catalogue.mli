(** The merged code catalogue behind [utlbcheck --explain].

    Every stable finding code the tooling can emit appears here exactly
    once with a one-line description:

    - [UC00x] config-file syntax ({!Config_file});
    - [UC1xx] semantic configuration lints ({!Config_lint}), including
      the [UC16x] metric-namespace and [UC17x] fault-plan lints;
    - [UV0x] runtime sanitizer violations ({!Invariant});
    - [UP0x] static protocol-verifier findings ({!Protocol});
    - [UP1x] happens-before race findings ({!Hb});
    - [UP2x] exhaustive-exploration findings ({!Explore});
    - [UP4x] worst-case bound findings ({!Bound}).

    [LINTS.md] at the repository root mirrors this table; a unit test
    keeps the two in sync. *)

val config_syntax : (string * string) list

val config_lint : (string * string) list

val runtime_violations : (string * string) list

val protocol : (string * string) list

val races : (string * string) list

val exploration : (string * string) list

val bounds : (string * string) list

val all : (string * string) list
(** Every [(code, description)] pair, in catalogue order (the order
    [LINTS.md] lists them). *)

val describe : string -> string option
(** Case-insensitive: [describe "up40"] resolves like
    [describe "UP40"]. *)

val mem : string -> bool
(** Case-insensitive, like {!describe}. *)
