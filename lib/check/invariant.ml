module Sanitizer = Utlb_sim.Sanitizer

let codes =
  [
    ("UV01", "pin/unpin imbalance detected at process removal");
    ("UV02", "DMA or cache fill used the pinned garbage frame");
    ("UV03", "DMA issued against a frame whose page is not pinned");
    ("UV04", "NI-cache entry disagrees with the host translation table");
    ("UV05", "NI-cache holds a translation for an unpinned page");
    ("UV06", "event dispatched before the simulation clock");
    ("UV07", "miss-classifier shadow structures diverged");
    ("UV08", "incremental pin accounting disagrees with a full recount");
    ("UC170", "fault-plan spec does not parse (unknown class or bad value)");
    ("UC171", "fault probability outside [0,1]");
    ("UC172", "negative fault retry budget or duration");
  ]

let describe code = List.assoc_opt code codes

let check_dispatch san ~now ~at =
  if Utlb_sim.Time.compare at now < 0 then
    Sanitizer.recordf san ~code:"UV06"
      "event dispatched at %a, before the current clock %a" Utlb_sim.Time.pp
      at Utlb_sim.Time.pp now

let monitor_engine san engine =
  Utlb_sim.Engine.set_dispatch_monitor engine
    (Some (fun ~now ~at -> check_dispatch san ~now ~at))

let dma_frame_guard san ~host ~frame =
  if frame = Utlb_mem.Host_memory.garbage_frame host then
    Sanitizer.recordf san ~code:"UV02"
      "DMA issued against the pinned garbage frame %d" frame
  else
    match Utlb_mem.Host_memory.frame_owner host ~frame with
    | None ->
      Sanitizer.recordf san ~code:"UV03"
        "DMA issued against frame %d, which backs no resident page" frame
    | Some (pid, vpn) ->
      if Utlb_mem.Host_memory.pin_count host pid ~vpn = 0 then
        Sanitizer.recordf san ~code:"UV03"
          "DMA issued against frame %d (pid %a, vpn %d) while the page is \
           not pinned"
          frame Utlb_mem.Pid.pp pid vpn

let guard_dma san ~host dma =
  Utlb_nic.Dma.set_frame_guard dma
    (Some (fun ~frame -> dma_frame_guard san ~host ~frame))
