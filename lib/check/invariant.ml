module Sanitizer = Utlb_sim.Sanitizer

(* The runtime half of the merged {!Catalogue}: the UV violations this
   module records plus the fault-plan lints historically described
   here. [--explain] resolves against the full catalogue. *)
let codes =
  Catalogue.runtime_violations
  @ List.filter
      (fun (code, _) -> List.mem code [ "UC170"; "UC171"; "UC172" ])
      Catalogue.config_lint

let describe = Catalogue.describe

let check_dispatch san ~now ~at =
  if Utlb_sim.Time.compare at now < 0 then
    Sanitizer.recordf san ~code:"UV06"
      "event dispatched at %a, before the current clock %a" Utlb_sim.Time.pp
      at Utlb_sim.Time.pp now

let monitor_engine san engine =
  Utlb_sim.Engine.set_dispatch_monitor engine
    (Some (fun ~now ~at -> check_dispatch san ~now ~at))

let dma_frame_guard san ~host ~frame =
  if frame = Utlb_mem.Host_memory.garbage_frame host then
    Sanitizer.recordf san ~code:"UV02"
      "DMA issued against the pinned garbage frame %d" frame
  else
    match Utlb_mem.Host_memory.frame_owner host ~frame with
    | None ->
      Sanitizer.recordf san ~code:"UV03"
        "DMA issued against frame %d, which backs no resident page" frame
    | Some (pid, vpn) ->
      if Utlb_mem.Host_memory.pin_count host pid ~vpn = 0 then
        Sanitizer.recordf san ~code:"UV03"
          "DMA issued against frame %d (pid %a, vpn %d) while the page is \
           not pinned"
          frame Utlb_mem.Pid.pp pid vpn

let guard_dma san ~host dma =
  Utlb_nic.Dma.set_frame_guard dma
    (Some (fun ~frame -> dma_frame_guard san ~host ~frame))
