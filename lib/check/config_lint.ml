module Ni_cache = Utlb.Ni_cache
module Cost_model = Utlb.Cost_model

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The operand sizes the paper reports costs at; used to sample built
   cost models and to cross-compare tables with different anchors. *)
let paper_sizes = [ 1; 2; 4; 8; 16; 32 ]

let find ?context ?severity ~code fmt = Finding.vf ?context ?severity ~code fmt

(* --- Cache geometry ------------------------------------------------- *)

let lint_geometry ?context (cache : Ni_cache.config) =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let ways = Ni_cache.ways cache.associativity in
  if cache.entries <= 0 then
    add
      (find ?context ~code:"UC101" "cache entry count must be positive, got %d"
         cache.entries)
  else begin
    if cache.entries mod ways <> 0 then
      add
        (find ?context ~code:"UC102"
           "%d entries is not a multiple of the %s way count (%d)"
           cache.entries
           (Ni_cache.associativity_name cache.associativity)
           ways);
    let sets = cache.entries / ways in
    if cache.entries mod ways = 0 && not (is_power_of_two sets) then
      add
        (find ?context ~code:"UC103"
           "%d entries / %d ways gives %d sets, which is not a power of two \
            (the NI index hash requires one)"
           cache.entries ways sets);
    if is_power_of_two cache.entries
       && (cache.entries < 1024 || cache.entries > 16384) then
      add
        (find ?context ~severity:Finding.Info ~code:"UC104"
           "%d entries is outside the paper's 1K-16K sweep; results will not \
            be comparable to the published figures"
           cache.entries)
  end;
  List.rev !acc

(* --- Engine parameters ---------------------------------------------- *)

let lint_window ?context ~entries ~prefetch ~prepin ~memory_limit_pages () =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  if prefetch < 1 then
    add (find ?context ~code:"UC110" "prefetch must be >= 1, got %d" prefetch)
  else if entries > 0 && prefetch > entries then
    add
      (find ?context ~code:"UC111"
         "prefetch of %d entries exceeds the %d-entry cache; fetched \
          translations would evict each other within a single miss"
         prefetch entries);
  if prepin < 1 then
    add (find ?context ~code:"UC112" "prepin must be >= 1, got %d" prepin)
  else begin
    if entries > 0 && prepin > entries then
      add
        (find ?context ~severity:Finding.Warning ~code:"UC113"
           "pre-pin window of %d pages exceeds the %d-entry cache; most \
            pre-pinned pages can never be cached on the NI"
           prepin entries);
    if prepin > Utlb_mem.Page_table.max_vpn + 1 then
      add
        (find ?context ~code:"UC114"
           "pre-pin window of %d pages exceeds the %d-page virtual address \
            space"
           prepin
           (Utlb_mem.Page_table.max_vpn + 1))
  end;
  (match memory_limit_pages with
  | None -> ()
  | Some limit ->
    if limit <= 0 then
      add
        (find ?context ~code:"UC120"
           "per-process memory limit must be positive, got %d pages" limit)
    else if prepin >= 1 && limit < prepin then
      add
        (find ?context ~code:"UC121"
           "per-process memory limit of %d pages is smaller than one %d-page \
            pre-pin window; every check miss would evict the window it just \
            pinned"
           limit prepin));
  List.rev !acc

let lint_hier ?context (config : Utlb.Hier_engine.config) =
  lint_geometry ?context config.cache
  @ lint_window ?context ~entries:config.cache.entries
      ~prefetch:config.prefetch ~prepin:config.prepin
      ~memory_limit_pages:config.memory_limit_pages ()

let lint_intr ?context (config : Utlb.Intr_engine.config) =
  lint_geometry ?context config.cache
  @ lint_window ?context ~entries:config.cache.entries ~prefetch:1 ~prepin:1
      ~memory_limit_pages:config.memory_limit_pages ()

let lint_pp ?context (config : Utlb.Pp_engine.config) =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  if config.processes <= 0 then
    add
      (find ?context ~code:"UC130"
         "per-process engine needs at least one process, got %d"
         config.processes);
  if config.sram_budget_entries <= 0 then
    add
      (find ?context ~code:"UC131" "SRAM budget must be positive, got %d \
                                    entries"
         config.sram_budget_entries);
  if config.processes > 0 && config.sram_budget_entries > 0 then begin
    let per = config.sram_budget_entries / config.processes in
    if per = 0 then
      add
        (find ?context ~code:"UC132"
           "SRAM budget of %d entries divides to zero entries per process \
            across %d processes"
           config.sram_budget_entries config.processes)
    else if config.sram_budget_entries mod config.processes <> 0 then
      add
        (find ?context ~severity:Finding.Info ~code:"UC133"
           "SRAM budget of %d entries does not divide evenly across %d \
            processes; %d entries are wasted"
           config.sram_budget_entries config.processes
           (config.sram_budget_entries mod config.processes))
  end;
  List.rev !acc

(* --- Cost tables ----------------------------------------------------- *)

let lint_cost_anchors ?context ~name anchors =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  (match anchors with
  | [] -> add (find ?context ~code:"UC140" "%s has no anchor points" name)
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) anchors in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (size, cost) ->
        if Hashtbl.mem seen size then
          add
            (find ?context ~code:"UC141" "%s has duplicate anchor at size %d"
               name size)
        else Hashtbl.replace seen size ();
        if size <= 0 then
          add
            (find ?context ~code:"UC142"
               "%s has a non-positive anchor size %d" name size);
        if cost < 0.0 then
          add
            (find ?context ~code:"UC143" "%s(%d) is negative: %g us" name size
               cost))
      sorted;
    let rec monotone = function
      | (s1, c1) :: ((s2, c2) :: _ as rest) ->
        if s1 <> s2 && c2 < c1 then
          add
            (find ?context ~code:"UC144"
               "%s is not monotone: cost drops from %g us at size %d to %g \
                us at size %d"
               name c1 s1 c2 s2);
        monotone rest
      | _ -> ()
    in
    monotone sorted);
  List.rev !acc

(* Lints shared between a parsed config's scalars+anchors and a built
   Cost_model.t: [scalar name value] for the flat costs, [table name]
   returning a total-cost function over sizes (or None when the table
   was itself invalid and comparisons would be nonsense). *)
let lint_cost_relations ?context ~scalars ~table () =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  List.iter
    (fun (name, value) ->
      if value < 0.0 then
        add
          (find ?context ~code:"UC150" "%s is negative: %g us" name value))
    scalars;
  let scalar name = List.assoc name scalars in
  let ni_hit = scalar "ni_hit_us" in
  (match table "ni_miss" with
  | None -> ()
  | Some ni_miss ->
    let miss1 = ni_miss 1 in
    if ni_hit >= miss1 && miss1 >= 0.0 then
      add
        (find ?context ~code:"UC151"
           "NI-cache hit (%g us) costs at least as much as a host \
            translation fetch (%g us); the cache can never win and every \
            paper result inverts"
           ni_hit miss1);
    (match table "dma" with
    | None -> ()
    | Some dma ->
      List.iter
        (fun n ->
          if dma n > ni_miss n then
            add
              (find ?context ~code:"UC152"
                 "dma(%d) = %g us exceeds the total miss cost ni_miss(%d) = \
                  %g us it is part of"
                 n (dma n) n (ni_miss n)))
        paper_sizes));
  (match table "check_max" with
  | None -> ()
  | Some check_max ->
    let check_min = scalar "check_min_us" in
    if check_min > check_max 1 then
      add
        (find ?context ~code:"UC153"
           "best-case check (%g us) exceeds the worst-case check of a \
            single page (%g us)"
           check_min (check_max 1)));
  let user_check = scalar "user_check_us" in
  let kernel_pin = scalar "kernel_pin_us" in
  if user_check >= kernel_pin && kernel_pin >= 0.0 then
    add
      (find ?context ~severity:Finding.Warning ~code:"UC154"
         "user-level check (%g us) costs as much as a kernel pin (%g us); \
          the UTLB premise of cheap user-level checks does not hold"
         user_check kernel_pin);
  let intr = scalar "intr_us" in
  if intr < ni_hit && intr >= 0.0 then
    add
      (find ?context ~severity:Finding.Warning ~code:"UC155"
         "interrupt dispatch (%g us) is cheaper than an NI cache hit (%g \
          us); the interrupt baseline would dominate by construction"
         intr ni_hit);
  List.rev !acc

let lint_cost_model ?context model =
  let sample name f =
    lint_cost_anchors ?context ~name
      (List.map (fun n -> (n, f ~pages:n)) paper_sizes)
  in
  let sample_entries name f =
    lint_cost_anchors ?context ~name
      (List.map (fun n -> (n, f ~entries:n)) paper_sizes)
  in
  let anchors =
    sample "pin_table" (Cost_model.pin_us model)
    @ sample "unpin_table" (Cost_model.unpin_us model)
    @ sample_entries "ni_miss_table" (Cost_model.ni_miss_us model)
    @ sample_entries "dma_table" (Cost_model.dma_us model)
    @ sample "check_max_table" (Cost_model.check_max_us model)
  in
  let scalars =
    [
      ("user_check_us", Cost_model.user_check_us model);
      ("ni_hit_us", Cost_model.ni_hit_us model);
      ("ni_direct_us", Cost_model.ni_direct_us model);
      ("intr_us", Cost_model.intr_us model);
      ("kernel_pin_us", Cost_model.kernel_pin_us model);
      ("kernel_unpin_us", Cost_model.kernel_unpin_us model);
      ("check_min_us", Cost_model.check_min_us model ~pages:1);
    ]
  in
  let table = function
    | "ni_miss" -> Some (fun n -> Cost_model.ni_miss_us model ~entries:n)
    | "dma" -> Some (fun n -> Cost_model.dma_us model ~entries:n)
    | "check_max" -> Some (fun n -> Cost_model.check_max_us model ~pages:n)
    | _ -> None
  in
  anchors @ lint_cost_relations ?context ~scalars ~table ()

(* --- Observability metric namespaces -------------------------------- *)

let lint_metrics ?context registry =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  List.iter
    (fun (name, wanted) ->
      add
        (find ?context ~code:"UC160"
           "metric %S re-requested as %s, clashing with its existing \
            registration; the second collector is detached and its \
            observations are silently lost"
           name wanted))
    (Utlb_obs.Metrics.collisions registry);
  List.iter
    (fun name ->
      if not (String.contains name '/') then
        add
          (find ?context ~severity:Finding.Warning ~code:"UC161"
             "metric %S is not namespaced as component/name; it cannot be \
              attributed to a trace lane"
             name))
    (Utlb_obs.Metrics.names registry);
  List.rev !acc

(* --- Fault plans ------------------------------------------------------ *)

let lint_faults ?context spec =
  match Utlb_fault.Plan.parse spec with
  | Error msg -> [ find ?context ~code:"UC170" "%s" msg ]
  | Ok plan ->
    List.map
      (fun (key, problem) ->
        (* [validate] phrases probability problems as "probability ...";
           everything else is a negative budget or duration. *)
        let code =
          if String.length problem >= 11
             && String.equal (String.sub problem 0 11) "probability"
          then "UC171"
          else "UC172"
        in
        find ?context ~code "fault spec: %s: %s" key problem)
      (Utlb_fault.Plan.validate plan)

(* --- Whole parsed configurations ------------------------------------ *)

let pages_of_mb mb = mb * 1024 * 1024 / Utlb_mem.Addr.page_size

let lint_config (config : Config_file.t) =
  let context = config.source in
  let cache : Ni_cache.config =
    { entries = config.entries; associativity = config.associativity }
  in
  let memory_limit_pages = Option.map pages_of_mb config.limit_mb in
  let engine_findings =
    match config.engine with
    | Config_file.Utlb ->
      lint_hier ~context
        {
          cache;
          prefetch = config.prefetch;
          prepin = config.prepin;
          policy = config.policy;
          memory_limit_pages;
        }
    | Config_file.Intr -> lint_intr ~context { cache; memory_limit_pages }
    | Config_file.Per_process ->
      lint_pp ~context
        {
          sram_budget_entries = config.sram_budget_entries;
          processes = config.processes;
          policy = config.policy;
        }
  in
  let anchor_findings =
    lint_cost_anchors ~context ~name:"pin_table" config.pin_table
    @ lint_cost_anchors ~context ~name:"unpin_table" config.unpin_table
    @ lint_cost_anchors ~context ~name:"ni_miss_table" config.ni_miss_table
    @ lint_cost_anchors ~context ~name:"dma_table" config.dma_table
    @ lint_cost_anchors ~context ~name:"check_max_table"
        config.check_max_table
  in
  let scalars =
    [
      ("user_check_us", config.user_check_us);
      ("ni_hit_us", config.ni_hit_us);
      ("ni_direct_us", config.ni_direct_us);
      ("intr_us", config.intr_us);
      ("kernel_pin_us", config.kernel_pin_us);
      ("kernel_unpin_us", config.kernel_unpin_us);
      ("check_min_us", config.check_min_us);
    ]
  in
  (* Only cross-compare tables that are individually well-formed;
     Cost_table.create would raise on the rest, and relations over a
     broken table are noise next to its UC14x finding. *)
  let usable anchors name =
    if Finding.has_errors (lint_cost_anchors ~name anchors) then None
    else
      let t = Utlb_sim.Cost_table.create anchors in
      Some (Utlb_sim.Cost_table.eval t)
  in
  let table = function
    | "ni_miss" -> usable config.ni_miss_table "ni_miss_table"
    | "dma" -> usable config.dma_table "dma_table"
    | "check_max" -> usable config.check_max_table "check_max_table"
    | _ -> None
  in
  let fault_findings =
    match config.faults with
    | None -> []
    | Some spec -> lint_faults ~context spec
  in
  engine_findings @ anchor_findings
  @ lint_cost_relations ~context ~scalars ~table ()
  @ fault_findings

let lint_defaults () =
  lint_hier ~context:"Hier_engine.default_config"
    Utlb.Hier_engine.default_config
  @ lint_intr ~context:"Intr_engine.default_config"
      Utlb.Intr_engine.default_config
  @ lint_pp ~context:"Pp_engine.default_config" Utlb.Pp_engine.default_config
  @ lint_cost_model ~context:"Cost_model.default" Cost_model.default
  @ lint_config { Config_file.default with source = "Config_file.default" }
  @
  (* The standard observability schema must register collision-free and
     be idempotent (a scope attaching to an already-populated registry
     must not detach any collector). *)
  let registry = Utlb_obs.Metrics.create () in
  Utlb_obs.Scope.preregister registry;
  Utlb_obs.Scope.preregister registry;
  lint_metrics ~context:"Scope.preregister" registry
