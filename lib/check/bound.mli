(** Symbolic worst-case latency and resource analyzer: the
    [utlbcheck bound] pass.

    Where {!Protocol} checks the traces we happen to run and
    {!Explore} enumerates a small scope exhaustively, this pass proves
    budgets {e without running anything}: it abstract-interprets the
    worst-case control paths each engine enumerates over its
    {!Utlb.Stepper} semantics ({!Utlb.Engine_intf.S.cost_paths})
    against the paper's {!Utlb.Cost_model}, and derives sound upper
    bounds on

    - single-translation latency — the maximum over the engine's
      priced hit / miss / walk / fault-retry paths (including
      Victima's spill-recall and Utopia's RestSeg-fallback chains),
      with every {!Utlb.Stepper.Cost.Walk} absorbing the fault plan's
      worst-case DMA retry/backoff chain and every
      {!Utlb.Stepper.Cost.Intr} its worst re-issue chain;
    - pinned-page population — per process, the larger of the
      semantics' capacity ({!Utlb.Stepper.capacity}: an in-flight
      buffer may break a smaller limit, the UP01 scenario) and the
      widest pre-pin span, clamped to the virtual address space; and
    - per-tenant quota headroom — each tenant's pin quota measured
      symbolically against the worst single buffer and the tenant's
      own population bound.

    Findings use the UP4x codes ({!Catalogue.bounds}): UP40 SLO
    violation, UP41 unbounded retry cost, UP42 tenant starvation, UP43
    eviction chain wider than the cache, UP44 dead (unreachable)
    configuration.

    Soundness: each engine's paths dominate its Section 6.2 cost
    equation at worst-case rates (see {!Utlb.Stepper.Cost}), so for
    any trace the empirically observed average lookup cost, pinned
    population, and per-tenant denial count never exceed the bound —
    the differential suite in [test/test_bound.ml] asserts exactly
    this across all five engines and the paper workloads. *)

(** {2 SLO specs} *)

type slo = { lat_us : float option; pinned : int option }
(** A service-level objective: a worst-case single-translation latency
    budget in microseconds and/or a node-wide pinned-page budget.
    [None] fields are unconstrained. *)

val no_slo : slo

val slo_of_string : string -> (slo, string) result
(** Parse ["lat_us<=N,pinned<=M"] (comma- or semicolon-separated;
    either key may be omitted). *)

val slo_to_string : slo -> string

(** {2 Bounds} *)

type pinned_bound = {
  per_process : int;  (** Sound per-process pinned-page bound. *)
  processes : int;  (** Processes the node-wide bound multiplies by. *)
  total : int;  (** [per_process * processes]. *)
  bounded : bool;
      (** [false] when no memory limit binds and the bound degrades to
          the virtual address space. *)
}

type tenant_bound = {
  tenant : string;
  quota : int option;
  pinned_cap : int;
      (** Sound bound on the tenant's pinned population: its quota
          clamped by its processes' own population bounds. *)
  headroom : int;
      (** [pinned_cap] minus one maximal buffer — how much of the cap
          survives the worst single request. Negative headroom is the
          UP42 starvation condition. *)
}

type path_cost = { path : string; us : float }

type t = {
  label : string;
  semantics : Utlb.Stepper.semantics;
  npages : int;  (** Widest buffer the bounds cover. *)
  paths : path_cost list;  (** Priced paths, most expensive first. *)
  lat_us : float;  (** Worst path: the sound latency bound. *)
  fault_us : float;
      (** Worst-case fault surcharge one miss walk absorbs (already
          included in [paths] and [lat_us]). *)
  pinned : pinned_bound;
  tenants : tenant_bound list;
  findings : Finding.t list;  (** UP4x, sorted by severity. *)
}

val analyze :
  ?model:Utlb.Cost_model.t ->
  ?faults:Utlb_fault.Plan.t ->
  ?tenants:Utlb_tenant.Tenant.config ->
  ?slo:slo ->
  ?npages:int ->
  ?processes:int ->
  ?label:string ->
  Utlb.Engine_intf.packed ->
  t
(** Derive the bounds of one engine configuration. [npages]
    (default 32, the cost tables' last anchor) is the widest buffer
    certified; [processes] (default 8) scales the node-wide pinned
    bound. Deterministic and simulation-free. *)

val analyze_mech :
  ?model:Utlb.Cost_model.t ->
  ?faults:Utlb_fault.Plan.t ->
  ?tenants:Utlb_tenant.Tenant.config ->
  ?slo:slo ->
  ?npages:int ->
  ?processes:int ->
  name:string ->
  params:(string * string) list ->
  unit ->
  (t, string) result
(** Resolve a registry mechanism spec (the [--engine name,k=v,...]
    form) and {!analyze} it. [Error] on an unknown mechanism or
    malformed parameters. *)

val of_config : Config_file.t -> Utlb.Engine_intf.packed * Utlb.Cost_model.t
(** The packed engine and cost model a parsed configuration file
    declares (cost tables that fail to construct fall back to the
    paper defaults; {!Config_lint} reports them separately). *)

val witness_target : Utlb.Stepper.scope -> t -> int
(** The pinned bound clamped to an exploration scope: what a concrete
    schedule inside [scope] can actually realize ([procs] processes,
    at most [pages] distinct pages each). {!Explore.pinned_witness}
    searching to this target CONFIRMS the scoped instance of the
    bound. *)

val pp : Format.formatter -> t -> unit
(** One human-readable block: the worst path, latency and pinned
    bounds, fault surcharge, and per-tenant caps. *)

val pp_json : Format.formatter -> t -> unit
(** One JSON object carrying the full bound (paths, pinned, tenants,
    findings). *)

val pp_json_list : Format.formatter -> t list -> unit
