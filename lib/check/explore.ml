(* The explicit-state bounded model checker behind [utlbcheck
   explore]. See explore.mli for the algorithm. *)

module Stepper = Utlb.Stepper
module Record = Utlb_trace.Record
module Trace = Utlb_trace.Trace
module Pid = Utlb_mem.Pid

(* {2 Configuration} *)

type config = { scope : Stepper.scope; max_depth : int; budget : int }

let default_config =
  { scope = Stepper.default_scope; max_depth = 400; budget = 200_000 }

(* {2 Results} *)

type truncation = Exhaustive | Depth_capped | Budget_capped

let truncation_label = function
  | Exhaustive -> "exhaustive"
  | Depth_capped -> "depth"
  | Budget_capped -> "budget"

type stats = {
  states : int;
  transitions : int;
  enabled_total : int;
  dpor_prunes : int;
  sleep_prunes : int;
  revisits : int;
  max_depth : int;
  truncation : truncation;
  time_ms : float;
}

let prune_ratio stats =
  if stats.enabled_total = 0 then 0.
  else float_of_int stats.dpor_prunes /. float_of_int stats.enabled_total

type counterexample = {
  code : string;
  pid : int;
  records : Record.t list;
  schedule : string list;
}

type result = {
  label : string;
  semantics : Stepper.semantics;
  findings : Finding.t list;
  counterexamples : counterexample list;
  stats : stats;
}

(* {2 Deriving semantics} *)

let semantics_of_packed (Utlb.Engine_intf.Packed ((module E), cfg)) =
  E.stepper cfg

let semantics_of_mech ~name ~params =
  match Utlb.Sim_driver.Registry.find name with
  | None -> Error (Printf.sprintf "unknown mechanism %S" name)
  | Some entry -> (
    try Ok (semantics_of_packed (entry.of_params params))
    with Invalid_argument msg -> Error msg)

let pages_of_mb mb = mb * 1024 * 1024 / Utlb_mem.Addr.page_size

let semantics_of_config (config : Config_file.t) =
  let limit_pages = Option.map pages_of_mb config.limit_mb in
  match config.engine with
  | Config_file.Utlb ->
    Stepper.Hier { prepin = config.prepin; limit_pages }
  | Config_file.Intr ->
    Stepper.Intr { entries = config.entries; limit_pages }
  | Config_file.Per_process ->
    Stepper.Static
      {
        processes = config.processes;
        share =
          (if config.processes <= 0 then 0
           else config.sram_budget_entries / config.processes);
      }

let program_of_records records =
  List.map
    (fun (r : Record.t) ->
      ( Pid.to_int r.pid,
        { Stepper.vpn = r.vpn; npages = r.npages; op = r.op } ))
    records

let program_of_trace trace =
  program_of_records (Array.to_list (Trace.records trace))

(* {2 Counterexample minimization}

   A counterexample must replay as a standard trace: only the Issue
   actions carry trace records, and the UP0x admission violations are
   single-record (UP01/02/03/05) or distinct-pid-prefix (UP04)
   conditions, so the minimized trace keeps exactly the records that
   re-trigger the code under [utlbcheck verify]. Exploration-only
   codes (UP2x) keep every issued record — the interleaving lives in
   the schedule comment. *)

let minimized_records ~code ~pid path =
  let issues =
    List.filter_map
      (function
        | Stepper.Issue { pid; req } -> Some (pid, req)
        | _ -> None)
      path
  in
  let last_of_pid () =
    match List.rev (List.filter (fun (p, _) -> p = pid) issues) with
    | last :: _ -> [ last ]
    | [] -> issues
  in
  let picked =
    match code with
    | "UP01" | "UP02" | "UP03" | "UP05" -> last_of_pid ()
    | "UP04" ->
      let seen = Hashtbl.create 8 in
      let firsts =
        List.filter
          (fun (p, _) ->
            if Hashtbl.mem seen p then false
            else begin
              Hashtbl.add seen p ();
              true
            end)
          issues
      in
      let last = last_of_pid () in
      firsts @ List.filter (fun r -> not (List.memq r firsts)) last
    | _ -> issues
  in
  List.mapi
    (fun i (p, (req : Stepper.request)) ->
      Record.make ~time_us:(float_of_int i) ~pid:(Pid.of_int p) ~vpn:req.vpn
        ~npages:req.npages ~op:req.op)
    picked

let counterexample_lines result ce =
  let header =
    [
      "# utlbcheck explore counterexample";
      Printf.sprintf "# engine: %s  code: %s  pid: %d" result.label ce.code
        ce.pid;
      Printf.sprintf "# schedule (%d steps):" (List.length ce.schedule);
    ]
    @ List.map (fun step -> "#   " ^ step) ce.schedule
  in
  header @ List.map Record.to_string ce.records

(* {2 The search}

   Depth-first search over the stepper's transition graph with:

   - canonical state caching: states are immutable sorted values, so
     the visited table hashes them structurally;
   - sleep sets: an action explored from a state is pushed into the
     sleep set of its later siblings and inherited (filtered by
     independence) by their children — re-exploring a different
     linearisation of the same Mazurkiewicz trace is pruned;
   - a persistent-set heuristic: when some process has a provably
     non-conflicting next step (an interrupt delivery, a table publish
     of a page nobody else touches, ...), only that process is
     advanced, collapsing the interleavings of independent phases.

   A cached state remembers the sleep sets it was explored under and
   is only skipped when a previous exploration was at least as
   permissive (its sleep set a subset of the current one), so caching
   never hides transitions the sleep sets still allow. *)

let dependent scope sem st a b =
  let open Stepper in
  let same_page =
    match (page_of a, page_of b) with
    | Some x, Some y -> x = y
    | _ -> false
  in
  let is_evict = function Evict _ -> true | _ -> false in
  let is_issue = function Issue _ -> true | _ -> false in
  (* Evictions are only possible near a full cache; away from that
     frontier, fetches and activity boundaries commute freely. *)
  let near_full = List.length st.cache + 2 > scope.sets in
  let cache_op x =
    match x with
    | Fetch _ | Evict _ | Unpin _ -> true
    | Complete _ | Issue _ -> (
      (* Under cached = pinned, activity boundaries move the
         protection frontier the NI's victim choice reads. *)
      match sem with
      | Intr _ -> near_full
      | Hier _ | Static _ | Victima _ | Utopia _ -> false)
    | _ -> false
  in
  let pin_touch = function
    | Pin { pid; _ } | Unpin { pid; _ } -> Some pid
    | Evict { pid; _ } -> (
      match sem with
      | Intr _ -> Some pid
      | Hier _ | Static _ | Victima _ | Utopia _ -> None)
    | _ -> None
  in
  pid_of a = pid_of b
  || same_page
  || (match (pin_touch a, pin_touch b) with
     | Some p, Some q -> p = q
     | _ -> false)
  || (cache_op a && cache_op b
     && (near_full || is_evict a || is_evict b))
  || (is_issue a && is_issue b
     &&
     match sem with
     | Static _ -> true
     | Hier _ | Intr _ | Victima _ | Utopia _ -> false)

let is_evict_action = function Stepper.Evict _ -> true | _ -> false

(* Is [a] provably independent of every other enabled action — and of
   everything that could become enabled before [a]'s effects are
   consumed? Safe actions of one process form a singleton persistent
   set: advancing only that process cannot hide any interleaving. *)
let safe_action scope sem st enb a =
  let open Stepper in
  let enabled_matches f = List.exists f enb in
  let no_conflict_on pid vpn =
    not
      (enabled_matches (function
        | Evict { pid = p; vpn = v } | Unpin { pid = p; vpn = v } ->
          (p, v) = (pid, vpn)
        | _ -> false))
  in
  match a with
  | Irq _ | Publish _ -> true
  | Issue _ -> (
    (not (enabled_matches is_evict_action))
    &&
    match scope.program with
    | Some _ -> true
    | None -> (
      match sem with
      | Static _ -> false
      | Hier _ | Intr _ | Victima _ | Utopia _ -> true))
  | Pin { pid; _ } -> (
    (match sem with
    | Intr { limit_pages = Some _; _ } -> false
    | _ -> true)
    && not
         (enabled_matches (function
           | Unpin { pid = p; _ } -> p = pid
           | Evict { pid = p; _ } -> (
             match sem with Intr _ -> p = pid | _ -> false)
           | _ -> false)))
  | Fetch { pid; vpn } ->
    List.mem (pid, vpn) st.cache && no_conflict_on pid vpn
  | Use { pid; vpn } -> no_conflict_on pid vpn
  | Complete { pid } -> (
    match sem with
    | Intr _ ->
      (* Retiring moves the eviction-protection frontier, which only
         matters when the cache could actually evict. *)
      List.length st.cache + 2 <= scope.sets
      || not (List.exists (fun (p, _) -> p = pid) st.cache)
    | Hier _ | Static _ | Victima _ | Utopia _ -> true)
  | Evict _ | Unpin _ -> false

(* The subset of [enabled] actually expanded: the first process (in
   pid order) whose pending protocol steps are all safe, or the full
   enabled set when no such process exists. *)
let persistent_set scope sem st enb =
  let open Stepper in
  let chain_pids =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Evict _ | Unpin _ -> None
           | a -> Some (pid_of a))
         enb)
  in
  let group pid =
    List.filter
      (fun a ->
        (not (is_evict_action a))
        && (match a with Unpin _ -> false | _ -> true)
        && pid_of a = pid)
      enb
  in
  let rec pick = function
    | [] -> enb
    | pid :: rest ->
      let g = group pid in
      if g <> [] && List.for_all (safe_action scope sem st enb) g then g
      else pick rest
  in
  pick chain_pids

let severity_of = function
  | Stepper.Error -> Finding.Error
  | Stepper.Warning -> Finding.Warning

let explore ?(config = default_config) ?label sem =
  let scope = config.scope in
  let label = match label with Some l -> l | None -> Stepper.mechanism sem in
  let visited : (Stepper.state, Stepper.action list list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let found : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let findings = ref [] in
  let counterexamples = ref [] in
  let transitions = ref 0 in
  let enabled_total = ref 0 in
  let dpor_prunes = ref 0 in
  let sleep_prunes = ref 0 in
  let revisits = ref 0 in
  let max_depth_seen = ref 0 in
  let depth_capped = ref false in
  let budget_capped = ref false in
  let t0 = Sys.time () in
  let record_violation path (v : Stepper.violation) =
    if not (Hashtbl.mem found (v.code, v.pid)) then begin
      Hashtbl.replace found (v.code, v.pid) ();
      findings :=
        Finding.v ~context:label ~severity:(severity_of v.severity)
          ~code:v.code v.message
        :: !findings;
      let chronological = List.rev path in
      counterexamples :=
        {
          code = v.code;
          pid = v.pid;
          records = minimized_records ~code:v.code ~pid:v.pid chronological;
          schedule = List.map Stepper.action_label chronological;
        }
        :: !counterexamples
    end
  in
  (* [sleep] was explored under: skip only if a previous visit was at
     least as permissive. *)
  let covered sleep stored =
    List.exists
      (fun old -> List.for_all (fun a -> List.mem a sleep) old)
      stored
  in
  let rec dfs st sleep depth path =
    if !budget_capped then ()
    else begin
      if depth > !max_depth_seen then max_depth_seen := depth;
      let enb = Stepper.enabled scope sem st in
      if enb = [] then begin
        if not (Hashtbl.mem visited st) then Hashtbl.replace visited st [];
        List.iter (record_violation path)
          (Stepper.terminal_violations scope sem st)
      end
      else begin
        let stored = Hashtbl.find_opt visited st in
        match stored with
        | Some old when covered sleep old -> incr revisits
        | _ ->
          Hashtbl.replace visited st
            (sleep :: Option.value ~default:[] stored);
          enabled_total := !enabled_total + List.length enb;
          if depth >= config.max_depth then depth_capped := true
          else begin
            let expand = persistent_set scope sem st enb in
            let fired = ref 0 in
            let slp = ref sleep in
            List.iter
              (fun a ->
                if !budget_capped then ()
                else if List.mem a !slp then incr sleep_prunes
                else if !transitions >= config.budget then
                  budget_capped := true
                else begin
                  incr transitions;
                  incr fired;
                  let st', viols = Stepper.apply scope sem st a in
                  let path' = a :: path in
                  List.iter (record_violation path') viols;
                  dfs st'
                    (List.filter
                       (fun b -> not (dependent scope sem st a b))
                       !slp)
                    (depth + 1) path';
                  slp := a :: !slp
                end)
              expand;
            dpor_prunes := !dpor_prunes + (List.length enb - !fired)
          end
      end
    end
  in
  dfs (Stepper.initial scope sem) [] 0 [];
  let time_ms = (Sys.time () -. t0) *. 1000. in
  let truncation =
    if !budget_capped then Budget_capped
    else if !depth_capped then Depth_capped
    else Exhaustive
  in
  {
    label;
    semantics = sem;
    findings = Finding.by_severity (List.rev !findings);
    counterexamples = List.rev !counterexamples;
    stats =
      {
        states = Hashtbl.length visited;
        transitions = !transitions;
        enabled_total = !enabled_total;
        dpor_prunes = !dpor_prunes;
        sleep_prunes = !sleep_prunes;
        revisits = !revisits;
        max_depth = !max_depth_seen;
        truncation;
        time_ms;
      };
  }

(* {2 Witness search}

   [utlbcheck bound --witness] asks for a concrete schedule realizing
   the (scoped) pinned-population bound. This is a reachability query,
   not a violation sweep, so the DPOR machinery above is wrong for it:
   sleep sets and persistent sets preserve violations, not every
   intermediate global state, and the peak population lives exactly in
   the intermediate states. We run a plain bounded DFS instead, with

   - the visited table only (the pinned population is a function of
     the canonical state, so revisits can be skipped soundly);
   - a greedy action order (population-raising actions first) so the
     peak is found early; and
   - branch-and-bound: the search stops the moment the target is
     reached. *)

type witness = {
  target : int;
  peak : int;
  confirmed : bool;  (** [peak >= target]. *)
  schedule : string list;
  records : Record.t list;
  states : int;
  transitions : int;
}

(* Raise the population before spending budget anywhere else. *)
let witness_rank = function
  | Stepper.Pin _ -> 0
  | Stepper.Issue _ -> 1
  | Stepper.Publish _ | Stepper.Fetch _ | Stepper.Irq _ -> 2
  | Stepper.Use _ -> 3
  | Stepper.Complete _ -> 4
  | Stepper.Evict _ -> 5
  | Stepper.Unpin _ -> 6

let pinned_witness ?(config = default_config) ~target sem =
  let scope = config.scope in
  let visited : (Stepper.state, unit) Hashtbl.t = Hashtbl.create 4096 in
  let transitions = ref 0 in
  let best = ref (-1) in
  let best_path = ref [] in
  let stop = ref false in
  let rec dfs st depth path =
    if !stop || Hashtbl.mem visited st then ()
    else begin
      Hashtbl.replace visited st ();
      let pinned = List.length st.Stepper.pins in
      if pinned > !best then begin
        best := pinned;
        best_path := path;
        if pinned >= target then stop := true
      end;
      if (not !stop) && depth < config.max_depth then
        List.iter
          (fun a ->
            if (not !stop) && !transitions < config.budget then begin
              incr transitions;
              let st', _ = Stepper.apply scope sem st a in
              dfs st' (depth + 1) (a :: path)
            end)
          (List.stable_sort
             (fun a b -> compare (witness_rank a) (witness_rank b))
             (Stepper.enabled scope sem st))
    end
  in
  dfs (Stepper.initial scope sem) 0 [];
  let chronological = List.rev !best_path in
  let issues =
    List.filter_map
      (function
        | Stepper.Issue { pid; req } -> Some (pid, req)
        | _ -> None)
      chronological
  in
  {
    target;
    peak = max 0 !best;
    confirmed = !best >= target;
    schedule = List.map Stepper.action_label chronological;
    records =
      List.mapi
        (fun i (p, (req : Stepper.request)) ->
          Record.make ~time_us:(float_of_int i) ~pid:(Pid.of_int p)
            ~vpn:req.vpn ~npages:req.npages ~op:req.op)
        issues;
    states = Hashtbl.length visited;
    transitions = !transitions;
  }

let witness_lines ~label w =
  [
    "# utlbcheck bound witness";
    Printf.sprintf "# engine: %s  target: %d  peak: %d  status: %s" label
      w.target w.peak
      (if w.confirmed then "CONFIRMED" else "PLAUSIBLE");
    Printf.sprintf "# %d states, %d transitions" w.states w.transitions;
    Printf.sprintf "# schedule (%d steps):" (List.length w.schedule);
  ]
  @ List.map (fun step -> "#   " ^ step) w.schedule
  @ List.map Record.to_string w.records

let pp_stats ppf (result : result) =
  let s = result.stats in
  Format.fprintf ppf
    "%s: %d states, %d transitions, %d/%d interleavings pruned (%.1f%%), \
     %d sleep-set prunes, %d revisits, depth %d, %.1f ms%s"
    result.label s.states s.transitions s.dpor_prunes s.enabled_total
    (100. *. prune_ratio s)
    s.sleep_prunes s.revisits s.max_depth s.time_ms
    (match s.truncation with
    | Exhaustive -> ""
    | t -> Printf.sprintf " [truncated: %s cap]" (truncation_label t))
