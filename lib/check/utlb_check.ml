(** Correctness tooling for the UTLB simulator.

    Three halves:

    - {!Config_file} + {!Config_lint} + {!Finding}: static analysis of
      simulation configurations — geometry, engine parameters, and
      cost-table consistency — run by the [utlbcheck] CLI before any
      simulation, with machine-readable codes (UCxxx) and CI exit
      codes;
    - {!Protocol} + {!Hb} + {!Explore}: the [utlbcheck verify] and
      [utlbcheck explore] passes. {!Protocol} abstractly interprets
      workload traces (or whole campaign grids) against the declared
      engine semantics and reports must/may pin protocol violations
      (UP0x); {!Hb} runs a vector-clock happens-before analysis over
      exported event timelines and reports unordered conflicting
      accesses to shared translation state (UP1x); {!Explore}
      exhaustively model-checks every interleaving of the protocol's
      individual steps at a small scope, with DPOR, and reports
      reachable deadlocks, leaks, and races (UP2x) with minimized
      replayable counterexamples;
    - {!Bound}: the [utlbcheck bound] pass. Abstract-interprets each
      engine's worst-case control paths over the paper's cost model and
      derives sound upper bounds on single-translation latency (fault
      retry chains included), pinned-page population, and per-tenant
      quota headroom, gated against a declared SLO (UP4x); {!Explore}
      can search for a concrete schedule realizing the pinned bound,
      turning a PLAUSIBLE bound into a CONFIRMED one;
    - {!Invariant}: the cross-layer half of the runtime sanitizers
      (UVxx codes). The engines' own shadow checks are enabled by
      passing a {!Utlb_sim.Sanitizer.t} to their [create]; this module
      adds the DMA frame guard and the event-dispatch monitor that no
      single layer can implement alone.

    {!Catalogue} merges every code the tooling can emit; [LINTS.md] at
    the repository root mirrors it. *)

module Finding = Finding
module Catalogue = Catalogue
module Config_file = Config_file
module Config_lint = Config_lint
module Protocol = Protocol
module Hb = Hb
module Explore = Explore
module Bound = Bound
module Invariant = Invariant
