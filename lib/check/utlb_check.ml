(** Correctness tooling for the UTLB simulator.

    Two halves:

    - {!Config_file} + {!Config_lint} + {!Finding}: static analysis of
      simulation configurations — geometry, engine parameters, and
      cost-table consistency — run by the [utlbcheck] CLI before any
      simulation, with machine-readable codes (UCxxx) and CI exit
      codes;
    - {!Invariant}: the cross-layer half of the runtime sanitizers
      (UVxx codes). The engines' own shadow checks are enabled by
      passing a {!Utlb_sim.Sanitizer.t} to their [create]; this module
      adds the DMA frame guard and the event-dispatch monitor that no
      single layer can implement alone. *)

module Finding = Finding
module Config_file = Config_file
module Config_lint = Config_lint
module Invariant = Invariant
