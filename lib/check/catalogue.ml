(* The one table every finding code must appear in: --explain resolves
   against it, LINTS.md is checked against it by a unit test, and the
   passes' own codes are asserted to be members. Keep descriptions to
   one line; the emitting site carries the specifics. *)

let config_syntax =
  [
    ("UC001", "config line is not \"key = value\" (or the key is empty)");
    ("UC002", "unknown configuration key ignored");
    ("UC003", "invalid value for a known configuration key");
    ("UC004", "duplicate configuration key; the later value wins");
    ("UC005", "empty value for a configuration key");
  ]

let config_lint =
  [
    ("UC101", "cache entry count is not positive");
    ("UC102", "cache entries are not a multiple of the way count");
    ("UC103", "cache set count is not a power of two");
    ("UC104", "cache entry count is outside the paper's 1K-16K sweep");
    ("UC110", "prefetch window is below 1");
    ("UC111", "prefetch window exceeds the cache; fetched entries evict \
               each other within one miss");
    ("UC112", "pre-pin window is below 1");
    ("UC113", "pre-pin window exceeds the cache; most pre-pinned pages \
               can never be cached");
    ("UC114", "pre-pin window exceeds the virtual address space");
    ("UC120", "per-process memory limit is not positive");
    ("UC121", "memory limit is smaller than one pre-pin window");
    ("UC130", "per-process engine needs at least one process");
    ("UC131", "SRAM budget is not positive");
    ("UC132", "SRAM budget divides to zero entries per process");
    ("UC133", "SRAM budget does not divide evenly across processes");
    ("UC140", "cost table has no anchor points");
    ("UC141", "cost table has a duplicate anchor size");
    ("UC142", "cost table has a non-positive anchor size");
    ("UC143", "cost table anchor cost is negative");
    ("UC144", "cost table is not monotone in operand size");
    ("UC150", "scalar cost is negative");
    ("UC151", "NI-cache hit costs at least as much as a host fetch; the \
               cache can never win");
    ("UC152", "DMA cost exceeds the total miss cost it is part of");
    ("UC153", "best-case check exceeds the worst-case single-page check");
    ("UC154", "user-level check costs as much as a kernel pin");
    ("UC155", "interrupt dispatch is cheaper than an NI cache hit");
    ("UC160", "metric name re-registered with a clashing collector; \
               observations are silently lost");
    ("UC161", "metric name is not namespaced as component/name");
    ("UC170", "fault-plan spec does not parse (unknown class or bad value)");
    ("UC171", "fault probability outside [0,1]");
    ("UC172", "negative fault retry budget or duration");
    ("UC180", "tenants spec does not parse (bad mode, pid set, or \
               attribute)");
    ("UC181", "tenant pid sets overlap; a process can have only one \
               tenant");
    ("UC182", "tenant share is outside (0,1] or the shares sum past 1");
    ("UC183", "tenant quota or weight is not positive");
    ("UC184", "strict partition geometry is infeasible: a share rounds \
               below one cache set, or more tenants than sets");
  ]

let runtime_violations =
  [
    ("UV01", "pin/unpin imbalance detected at process removal");
    ("UV02", "DMA or cache fill used the pinned garbage frame");
    ("UV03", "DMA issued against a frame whose page is not pinned");
    ("UV04", "NI-cache entry disagrees with the host translation table");
    ("UV05", "NI-cache holds a translation for an unpinned page");
    ("UV06", "event dispatched before the simulation clock");
    ("UV07", "miss-classifier shadow structures diverged");
    ("UV08", "incremental pin accounting disagrees with a full recount");
  ]

let protocol =
  [
    ("UP00", "trace record does not parse");
    ("UP01", "pin-balance break: a buffer larger than the memory limit \
              forces the pinned population past the limit (in-flight \
              pages are protected from eviction)");
    ("UP02", "garbage-frame reuse: the buffer extends past the \
              translation table, so the NI dereferences the garbage \
              frame");
    ("UP03", "DMA into unpinned memory: the buffer is wider than the \
              interrupt baseline's cache, so self-conflict eviction \
              unpins in-flight pages mid-transfer");
    ("UP04", "table-capacity overflow: more processes than per-process \
              tables, or a buffer wider than one table share, aborts \
              the engine");
    ("UP05", "NI-cache/host-table divergence window: the buffer fits \
              the memory limit but its pre-pin window does not, so \
              replacement may invalidate in-flight entries");
  ]

let races =
  [
    ("UP10", "unpin races NI translation: no happens-before edge orders \
              a page's unpin after the NI's use of its translation");
    ("UP11", "table update races NI fetch: a pin-table write and an NI \
              fetch of the same entry are unordered");
    ("UP12", "event timeline does not parse");
    ("UP13", "event time regresses within one actor");
  ]

let isolation =
  [
    ("UP30", "cross-tenant eviction under strict partitioning: one \
              tenant's NI-cache line was evicted by a fill on behalf \
              of another tenant");
    ("UP31", "cross-tenant unpin window: a tenant's unpin interleaves \
              inside another tenant's in-flight NI miss->fetch window");
  ]

let exploration =
  [
    ("UP20", "exploration deadlock: a reachable interleaving leaves \
              protocol work pending with no enabled action");
    ("UP21", "unreachable unpin: a reachable terminal state leaves pages \
              pinned that no further action can ever release");
    ("UP22", "non-quiescent final state: a reachable terminal state \
              leaves stale translations in the table or NI cache for \
              pages that are no longer pinned");
    ("UP23", "in-flight invalidation race: exploration found an eviction \
              or unpin of a translation while its page's fetch or DMA \
              was in flight");
  ]

let bounds =
  [
    ("UP40", "SLO violation: the sound worst-case latency or pinned-page \
              bound exceeds the declared budget");
    ("UP41", "unbounded retry cost: the fault plan's worst-case \
              retry/backoff chain for a single translation exceeds the \
              one-second sanity ceiling");
    ("UP42", "tenant starvation: a pin quota is below one maximal buffer, \
              so a full-width request can never be admitted");
    ("UP43", "worst-case eviction chain exceeds the cache: a maximal \
              lookup (or its prefetch window) must evict its own \
              in-flight entries within one translation");
    ("UP44", "dead configuration: a declared bound (memory limit or \
              tenant quota) can never be reached, so the path it guards \
              is unreachable");
  ]

let all =
  config_syntax @ config_lint @ runtime_violations @ protocol @ races
  @ isolation @ exploration @ bounds

(* Codes are canonically upper-case; lookups normalise so `--explain
   up40` resolves like `--explain UP40`. *)
let describe code = List.assoc_opt (String.uppercase_ascii code) all

let mem code = List.mem_assoc (String.uppercase_ascii code) all
