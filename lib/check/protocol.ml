module Record = Utlb_trace.Record
module Trace = Utlb_trace.Trace
module Workloads = Utlb_trace.Workloads

type model =
  | Hier of {
      entries : int;
      prefetch : int;
      prepin : int;
      limit_pages : int option;
    }
  | Intr of { entries : int; limit_pages : int option }
  | Per_process of { processes : int; entries_per_process : int }

type semantics = { model : model; label : string }

let pages_of_mb mb = mb * 1024 * 1024 / Utlb_mem.Addr.page_size

let of_config (config : Config_file.t) =
  let limit_pages = Option.map pages_of_mb config.limit_mb in
  let model =
    match config.engine with
    | Config_file.Utlb ->
      Hier
        {
          entries = config.entries;
          prefetch = config.prefetch;
          prepin = config.prepin;
          limit_pages;
        }
    | Config_file.Intr -> Intr { entries = config.entries; limit_pages }
    | Config_file.Per_process ->
      Per_process
        {
          processes = config.processes;
          entries_per_process =
            (if config.processes <= 0 then 0
             else config.sram_budget_entries / config.processes);
        }
  in
  { model; label = Config_file.engine_name config.engine }

(* Mirrors the parameter names and defaults of the
   {!Utlb.Sim_driver.Registry} registrations, so a grid cell is modelled
   with exactly the capacities its simulation would run with. Parameters
   the abstraction ignores (assoc, policy, cost scalars) are accepted
   silently, as the registry accepts them. *)
let of_mech ~name ~params =
  let int_param key ~default =
    match List.assoc_opt key params with
    | None -> Ok default
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "parameter %s=%S is not an integer" key s))
  in
  let ( let* ) = Result.bind in
  let limit () =
    let* mb = int_param "limit-mb" ~default:(-1) in
    Ok (if mb < 0 then None else Some (pages_of_mb mb))
  in
  match name with
  | "utlb" | "victima" | "utopia" ->
    (* The modern engines layer host-resident acceleration structures
       (victim store, RestSeg) over the hierarchical pin protocol; the
       abstract pin-state lattice is identical. *)
    let* entries = int_param "entries" ~default:8192 in
    let* prefetch = int_param "prefetch" ~default:1 in
    let* prepin = int_param "prepin" ~default:1 in
    let* limit_pages = limit () in
    Ok { model = Hier { entries; prefetch; prepin; limit_pages }; label = name }
  | "intr" ->
    let* entries = int_param "entries" ~default:8192 in
    let* limit_pages = limit () in
    Ok { model = Intr { entries; limit_pages }; label = name }
  | "per-process" ->
    let* budget = int_param "budget" ~default:8192 in
    let* processes = int_param "processes" ~default:5 in
    Ok
      {
        model =
          Per_process
            {
              processes;
              entries_per_process =
                (if processes <= 0 then 0 else budget / processes);
            };
        label = name;
      }
  | _ -> Error (Printf.sprintf "unknown mechanism %S" name)

let defaults =
  List.map
    (fun engine -> of_config { Config_file.default with engine })
    [ Config_file.Utlb; Config_file.Intr; Config_file.Per_process ]

(* {2 Abstract state} *)

type page = Garbage | Pinned of int | Unpinned | Top

type per_pid = {
  mutable epoch : int;
      (* Bumping the epoch lazily demotes every [Pinned] entry written
         under an older epoch to [Top] — the capacity clamp when a
         record may force replacement of previously pinned pages. *)
  pages : (int, int * page) Hashtbl.t;  (* vpn -> (epoch, state) *)
  mutable lo : int;
  mutable hi : int;
}

type state = {
  model : model;
  procs : (int, per_pid) Hashtbl.t;
  emitted : (string * int, unit) Hashtbl.t;
      (* One finding per (code, pid): the first offending record
         carries the report; repeats of the same break add noise, not
         information. *)
}

let init model = { model; procs = Hashtbl.create 8; emitted = Hashtbl.create 8 }

let per_pid state pid =
  match Hashtbl.find_opt state.procs pid with
  | Some p -> p
  | None ->
    let p = { epoch = 0; pages = Hashtbl.create 64; lo = 0; hi = 0 } in
    Hashtbl.add state.procs pid p;
    p

let page_state state ~pid ~vpn =
  match Hashtbl.find_opt state.procs pid with
  | None -> Garbage
  | Some p -> (
    match Hashtbl.find_opt p.pages vpn with
    | None -> Garbage
    | Some (epoch, (Pinned _ as pg)) -> if epoch < p.epoch then Top else pg
    | Some (_, pg) -> pg)

let pinned_interval state ~pid =
  match Hashtbl.find_opt state.procs pid with
  | None -> (0, 0)
  | Some p -> (p.lo, p.hi)

let set_page p vpn pg = Hashtbl.replace p.pages vpn (p.epoch, pg)

let capacity = function
  | Hier { limit_pages = Some l; _ } | Intr { limit_pages = Some l; _ } -> l
  | Hier _ | Intr _ -> max_int
  | Per_process { entries_per_process; _ } -> entries_per_process

let max_vpn = Utlb.Translation_table.max_vpn

let emit state ~code ~pid acc finding =
  if Hashtbl.mem state.emitted (code, pid) then acc
  else begin
    Hashtbl.replace state.emitted (code, pid) ();
    finding () :: acc
  end

let step state ~line (r : Record.t) =
  let pid = Utlb_mem.Pid.to_int r.pid in
  let n = r.npages in
  let findings = ref [] in
  let emit ~code f = findings := emit state ~code ~pid !findings f in
  (* Admission: the buffer must fit the translation table, whatever the
     engine; past it the NI translates through entries that do not
     exist. *)
  if r.vpn + n - 1 > max_vpn then
    emit ~code:"UP02" (fun () ->
        Finding.vf ~code:"UP02" ~line
          "buffer [%#x, %#x] extends past the translation table (max vpn \
           %#x); the NI dereferences the garbage frame"
          r.vpn
          (r.vpn + n - 1)
          max_vpn);
  (* Capacity checks per declared engine semantics. *)
  (match state.model with
  | Hier { prepin; limit_pages; _ } -> (
    match limit_pages with
    | None -> ()
    | Some l ->
      if n > l then
        emit ~code:"UP01" (fun () ->
            Finding.vf ~code:"UP01" ~line
              "record pins %d pages at once but the per-process limit is %d \
               pages; in-flight pages are protected from eviction, so the \
               engine must break the limit"
              n l)
      else if prepin > 1 && n + prepin - 1 > l then
        emit ~code:"UP05" (fun () ->
            Finding.vf ~severity:Finding.Warning ~code:"UP05" ~line
              "buffer of %d pages fits the %d-page limit but its pre-pin \
               window (%d) reaches %d pages; replacement may invalidate \
               NI entries of the in-flight buffer"
              n l prepin
              (n + prepin - 1)))
  | Intr { entries; limit_pages } -> (
    if n > entries then
      emit ~code:"UP03" (fun () ->
          Finding.vf ~code:"UP03" ~line
            "buffer of %d pages is wider than the %d-entry cache; under \
             cached = pinned, self-conflict eviction unpins the first %d \
             page(s) while their transfer is in flight"
            n entries (n - entries));
    match limit_pages with
    | Some l when n > l ->
      emit ~code:"UP01" (fun () ->
          Finding.vf ~code:"UP01" ~line
            "record pins %d pages at once but the per-process limit is %d \
             pages; in-flight pages are protected from eviction, so the \
             engine must break the limit"
            n l)
    | _ -> ())
  | Per_process { processes; entries_per_process } ->
    if
      (not (Hashtbl.mem state.procs pid))
      && Hashtbl.length state.procs >= processes
    then
      emit ~code:"UP04" (fun () ->
          Finding.vf ~code:"UP04" ~line
            "process %d is distinct process number %d but only %d \
             per-process tables are carved; the engine aborts"
            pid
            (Hashtbl.length state.procs + 1)
            processes);
    if n > entries_per_process then
      emit ~code:"UP04" (fun () ->
          Finding.vf ~code:"UP04" ~line
            "buffer of %d pages is wider than the %d-entry per-process \
             table share; every index is protected, eviction cannot free \
             one, and the engine aborts"
            n entries_per_process));
  (* Lattice update: the request span ends pinned; if its admission may
     force replacement, previously pinned pages become possible victims
     ([Top]) via an epoch bump. *)
  let p = per_pid state pid in
  let cap = capacity state.model in
  let extra =
    match state.model with
    | Hier { prepin; _ } -> max 0 (prepin - 1)
    | Intr _ | Per_process _ -> 0
  in
  let total = n + extra in
  if p.hi + total > cap then begin
    p.epoch <- p.epoch + 1;
    p.lo <- 0
  end;
  let hi_cap = max cap total in
  p.hi <- min (p.hi + total) hi_cap;
  p.lo <- max p.lo n;
  let last = min (r.vpn + n - 1) max_vpn in
  for vpn = r.vpn to last do
    match Hashtbl.find_opt p.pages vpn with
    | Some (epoch, (Pinned _ as pg)) when epoch = p.epoch -> set_page p vpn pg
    | _ -> set_page p vpn (Pinned 1)
  done;
  (* Pre-pin extension pages may or may not end up pinned (the window is
     clipped by capacity and prior state): [Top]. *)
  if extra > 0 then
    for vpn = r.vpn + n to min (r.vpn + n + extra - 1) max_vpn do
      match Hashtbl.find_opt p.pages vpn with
      | Some (epoch, Pinned _) when epoch = p.epoch -> ()
      | _ -> set_page p vpn Top
    done;
  (* The provable unpin of the intr pigeonhole: with [cached = pinned]
     and more pages than entries, filling the tail must have evicted the
     head of the very same span. *)
  (match state.model with
  | Intr { entries; _ } when n > entries ->
    for vpn = r.vpn to min (r.vpn + n - entries - 1) max_vpn do
      set_page p vpn Unpinned
    done
  | _ -> ());
  List.rev !findings

(* {2 Drivers} *)

let with_context context findings =
  match context with
  | None -> findings
  | Some _ ->
    List.map
      (fun (f : Finding.t) ->
        match f.Finding.context with None -> { f with context } | Some _ -> f)
      findings

let verify_records ?context (sem : semantics) records =
  let state = init sem.model in
  List.concat_map (fun (line, r) -> step state ~line r) records
  |> with_context context

let verify_trace ?context (sem : semantics) trace =
  let state = init sem.model in
  let findings = ref [] in
  let line = ref 0 in
  Trace.iter trace (fun r ->
      incr line;
      match step state ~line:!line r with
      | [] -> ()
      | fs -> findings := List.rev_append fs !findings);
  with_context context (List.rev !findings)

let verify_file (sem : semantics) path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | lines ->
    let state = init sem.model in
    let findings = ref [] in
    List.iteri
      (fun i raw ->
        let line = i + 1 in
        let s = String.trim raw in
        if s <> "" && s.[0] <> '#' then
          match Record.of_string s with
          | Error msg ->
            findings :=
              Finding.v ~code:"UP00" ~line msg :: !findings
          | Ok r ->
            (match step state ~line r with
            | [] -> ()
            | fs -> findings := List.rev_append fs !findings))
      lines;
    Ok (with_context (Some path) (List.rev !findings))

let verify_workload ?(seed = Utlb.Sim_driver.default_seed) sem
    (spec : Workloads.spec) =
  let context = spec.Workloads.name ^ "/" ^ sem.label in
  verify_trace ~context sem (spec.Workloads.generate ~seed)

let verify_grid (grid : Utlb_exp.Grid.t) =
  let module Grid = Utlb_exp.Grid in
  (* Traces are generated once per distinct workload spec with the grid
     seed — the exact streams {!Utlb_exp.Runner} will simulate. Verdicts
     are memoised per (trace, model): a policy sweep shares one model
     across many cells. *)
  let traces = ref [] in
  let trace_of (spec : Workloads.spec) =
    match List.find_opt (fun (s, _) -> s == spec) !traces with
    | Some (_, t) -> t
    | None ->
      let t = spec.Workloads.generate ~seed:grid.Grid.seed in
      traces := (spec, t) :: !traces;
      t
  in
  let verdicts = ref [] in
  let verdict_of (spec : Workloads.spec) model =
    match
      List.find_opt (fun (s, m, _) -> s == spec && m = model) !verdicts
    with
    | Some (_, _, fs) -> fs
    | None ->
      let fs =
        verify_trace { model; label = "" } (trace_of spec)
        |> List.map (fun (f : Finding.t) -> { f with Finding.context = None })
      in
      verdicts := (spec, model, fs) :: !verdicts;
      fs
  in
  List.concat_map
    (fun (c : Grid.cell) ->
      let context =
        Printf.sprintf "%s:%s/%s" grid.Grid.name
          c.Grid.workload.Workloads.name
          (Grid.mech_label c.Grid.mech)
      in
      let mech = c.Grid.mech in
      match
        of_mech ~name:mech.Grid.mech_name ~params:mech.Grid.params
      with
      | Error msg ->
        [ Finding.v ~context ~code:"UP00" ("cannot model mechanism: " ^ msg) ]
      | Ok sem ->
        verdict_of c.Grid.workload sem.model
        |> List.map (fun (f : Finding.t) ->
               { f with Finding.context = Some context }))
    (Grid.cells grid)
