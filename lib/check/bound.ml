(* The symbolic worst-case analyzer behind [utlbcheck bound]. See
   bound.mli for the abstract domain and the soundness argument. *)

module Stepper = Utlb.Stepper
module Cost = Utlb.Stepper.Cost
module Cost_model = Utlb.Cost_model
module Plan = Utlb_fault.Plan
module Tenant = Utlb_tenant.Tenant

(* {2 SLO specs} *)

type slo = { lat_us : float option; pinned : int option }

let no_slo = { lat_us = None; pinned = None }

let slo_to_string slo =
  match
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "lat_us<=%g") slo.lat_us;
        Option.map (Printf.sprintf "pinned<=%d") slo.pinned;
      ]
  with
  | [] -> "none"
  | parts -> String.concat "," parts

(* [cut ~sep s] splits [s] at the first occurrence of [sep]. *)
let cut ~sep s =
  let n = String.length sep in
  let rec find i =
    if i + n > String.length s then None
    else if String.sub s i n = sep then
      Some (String.sub s 0 i, String.sub s (i + n) (String.length s - i - n))
    else find (i + 1)
  in
  find 0

let slo_of_string spec =
  let parts =
    String.split_on_char ','
      (String.concat "," (String.split_on_char ';' spec))
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty SLO spec (expected lat_us<=N,pinned<=M)"
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun slo ->
            match cut ~sep:"<=" part with
            | None ->
              Error
                (Printf.sprintf "SLO term %S is not KEY<=VALUE (expected \
                                 lat_us<=N or pinned<=M)" part)
            | Some (key, value) -> (
              match (String.trim key, String.trim value) with
              | "lat_us", v -> (
                match float_of_string_opt v with
                | Some f when f >= 0. -> Ok { slo with lat_us = Some f }
                | _ ->
                  Error
                    (Printf.sprintf
                       "SLO latency budget %S is not a non-negative number" v))
              | "pinned", v -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok { slo with pinned = Some n }
                | _ ->
                  Error
                    (Printf.sprintf
                       "SLO pinned budget %S is not a non-negative integer" v))
              | k, _ ->
                Error
                  (Printf.sprintf
                     "unknown SLO key %S (expected lat_us or pinned)" k))))
      (Ok no_slo) parts

(* {2 Bounds} *)

type pinned_bound = {
  per_process : int;
  processes : int;
  total : int;
  bounded : bool;
}

type tenant_bound = {
  tenant : string;
  quota : int option;
  pinned_cap : int;
  headroom : int;
}

type path_cost = { path : string; us : float }

type t = {
  label : string;
  semantics : Stepper.semantics;
  npages : int;
  paths : path_cost list;
  lat_us : float;
  fault_us : float;
  pinned : pinned_bound;
  tenants : tenant_bound list;
  findings : Finding.t list;
}

(* One virtual address space: the translation table's vpn range. No
   population can exceed it, so it is the sound fallback bound when no
   memory limit binds. *)
let address_space = Utlb.Translation_table.max_vpn + 1

(* Retry chains longer than a second per translation are treated as
   unbounded for SLO purposes (UP41). *)
let retry_ceiling_us = 1_000_000.

(* Worst-case surcharge one NI miss walk absorbs from the fault plan:
   the full exponential backoff chain of a failing entry-fetch DMA
   (Injector.backoff_us summed over the retry budget), the
   interrupt-path fallback once the budget is exhausted, one latency
   spike, one bus stall, one spurious invalidation (a forced second
   walk), and one table swap-in (an interrupt plus the re-walk). *)
let walk_fault_us model (p : Plan.t) ~walk_base =
  let active prob = prob > 0. in
  (if active p.dma_fail then
     (if p.dma_retries > 0 then
        p.dma_backoff_us *. (Float.of_int (1 lsl p.dma_retries) -. 1.)
      else 0.)
     +. Cost_model.intr_us model
     +. Cost_model.kernel_pin_us model
   else 0.)
  +. (if active p.dma_spike then p.dma_spike_us else 0.)
  +. (if active p.bus_stall then p.bus_stall_us else 0.)
  +. (if active p.cache_invalidate then walk_base else 0.)
  +. if active p.table_swap then Cost_model.intr_us model +. walk_base else 0.

(* Worst-case surcharge one interrupt dispatch absorbs: every re-issue
   of a timed-out interrupt costs a full dispatch again. *)
let irq_fault_us model (p : Plan.t) =
  if p.irq_timeout > 0. && p.irq_retries > 0 then
    Float.of_int p.irq_retries *. Cost_model.intr_us model
  else 0.

let step_us model ~walk_fault ~irq_fault = function
  | Cost.Check n ->
    (* The scalar user check and the worst-case bitmap check are both
       reachable; a sound bound takes whichever is larger. *)
    Float.max
      (Cost_model.user_check_us model)
      (Cost_model.check_max_us model ~pages:(max 1 n))
  | Cost.Pin n -> Cost_model.pin_us model ~pages:(max 1 n)
  | Cost.Unpin n -> Cost_model.unpin_us model ~pages:(max 1 n)
  | Cost.Intr -> Cost_model.intr_us model +. irq_fault
  | Cost.Kernel_pin -> Cost_model.kernel_pin_us model
  | Cost.Kernel_unpin -> Cost_model.kernel_unpin_us model
  | Cost.Ni_hit -> Cost_model.ni_hit_us model
  | Cost.Ni_direct -> Cost_model.ni_direct_us model
  | Cost.Walk n -> Cost_model.ni_miss_us model ~entries:(max 1 n) +. walk_fault
  | Cost.Dma n -> Cost_model.dma_us model ~entries:(max 1 n)

let prepin_of = function
  | Stepper.Hier { prepin; _ }
  | Stepper.Victima { prepin; _ }
  | Stepper.Utopia { prepin; _ } -> max 1 prepin
  | Stepper.Intr _ | Stepper.Static _ -> 1

let pow2_floor n = if n < 1 then 0 else 1 lsl (Float.to_int (Float.log2 (Float.of_int n)))

let analyze ?(model = Cost_model.default) ?(faults = Plan.empty) ?tenants
    ?(slo = no_slo) ?(npages = 32) ?(processes = 8) ?label
    (Utlb.Engine_intf.Packed ((module E), config)) =
  let npages = max 1 npages in
  let processes = max 1 processes in
  let label = Option.value ~default:E.mechanism label in
  let sem = E.stepper config in
  let profile = E.cost_paths config ~npages in
  let findings = ref [] in
  let emit ?(severity = Finding.Error) code fmt =
    Format.kasprintf
      (fun message ->
        findings := Finding.v ~context:label ~severity ~code message :: !findings)
      fmt
  in
  (* (a) Latency: price every enumerated path; the fault plan's worst
     chain loads onto walk and interrupt steps. *)
  let walk_base =
    Cost_model.ni_miss_us model ~entries:(max 1 profile.Cost.prefetch)
  in
  let walk_fault = walk_fault_us model faults ~walk_base in
  let irq_fault = irq_fault_us model faults in
  let paths =
    List.map
      (fun (p : Cost.path) ->
        {
          path = p.Cost.path;
          us =
            List.fold_left
              (fun acc s -> acc +. step_us model ~walk_fault ~irq_fault s)
              0. p.Cost.steps;
        })
      profile.Cost.paths
    |> List.stable_sort (fun a b -> compare b.us a.us)
  in
  let lat_us = match paths with [] -> 0. | worst :: _ -> worst.us in
  let fault_us = walk_fault +. irq_fault in
  if walk_fault > retry_ceiling_us || irq_fault > retry_ceiling_us then
    emit "UP41"
      "unbounded retry cost: the fault plan's worst-case retry/backoff \
       chain adds %.0f µs to a single translation (over the %.0f µs \
       sanity ceiling); a retrying NI can stall a transfer indefinitely"
      (Float.max walk_fault irq_fault)
      retry_ceiling_us;
  (* (b) Pinned population. Per process the stepper's admission logic
     admits at most max(capacity, span) pages: population exceeds the
     capacity only while every pinned page is inside the in-flight
     span (the UP01 break), and the pre-pin window widens that span to
     npages + prepin - 1. Without a limit the bound degrades to the
     address space. *)
  let cap = Stepper.capacity sem in
  let span = npages + prepin_of sem - 1 in
  let bounded = cap < max_int in
  let per_process =
    if bounded then min address_space (max cap span) else address_space
  in
  let pinned =
    { per_process; processes; total = per_process * processes; bounded }
  in
  if bounded && cap >= address_space then
    emit ~severity:Finding.Warning "UP44"
      "dead configuration: the %d-page memory limit is at least the whole \
       %d-page virtual address space, so the limit (and its reclaim path) \
       can never be reached"
      cap address_space;
  (* (c) Cache geometry vs the worst-case eviction chain. *)
  let entries = profile.Cost.cache_entries in
  (if npages > entries then
     match sem with
     | Stepper.Intr _ ->
       emit "UP43"
         "worst-case eviction chain exceeds the cache: a %d-page buffer \
          is wider than the %d-entry cache, and under cached = pinned \
          the self-conflict evictions unpin in-flight pages mid-transfer"
         npages entries
     | Stepper.Hier _ | Stepper.Static _ | Stepper.Victima _
     | Stepper.Utopia _ ->
       emit ~severity:Finding.Warning "UP43"
         "worst-case eviction chain exceeds the cache: a %d-page buffer \
          must evict its own in-flight entries within one translation \
          (%d entries)"
         npages entries
   else if profile.Cost.prefetch > entries then
     emit ~severity:Finding.Warning "UP43"
       "worst-case eviction chain exceeds the cache: the %d-entry \
        prefetch window is wider than the %d-entry cache, so one miss's \
        fetched entries evict each other"
       profile.Cost.prefetch entries);
  (* (d) Tenant quota headroom, symbolically over the tenancy config. *)
  let tenant_bounds =
    match tenants with
    | None -> []
    | Some (cfg : Tenant.config) ->
      List.concat_map
        (fun (policy : Tenant.policy) ->
          let pids = max 1 (List.length policy.Tenant.pids) in
          let unclamped = per_process * pids in
          let pinned_cap =
            match policy.Tenant.quota with
            | Some q -> min (max 0 q) unclamped
            | None -> unclamped
          in
          (match policy.Tenant.quota with
          | Some q when q < npages ->
            emit "UP42"
              "tenant starvation: tenant %s's pin quota of %d page(s) is \
               below one maximal %d-page buffer, so a full-width request \
               is denied forever"
              policy.Tenant.name q npages
          | Some q when q >= unclamped && unclamped < address_space * pids ->
            emit ~severity:Finding.Warning "UP44"
              "dead configuration: tenant %s's pin quota of %d page(s) is \
               at least its %d-page population bound, so the quota can \
               never bind"
              policy.Tenant.name q unclamped
          | _ -> ());
          (match (cfg.Tenant.mode, policy.Tenant.share) with
          | Tenant.Strict, Some share ->
            let window =
              pow2_floor (Float.to_int (Float.of_int entries *. share))
            in
            if window < npages then
              emit ~severity:Finding.Warning "UP43"
                "worst-case eviction chain exceeds tenant %s's strict \
                 window: a %d-page buffer is wider than the ~%d-entry \
                 partition its %.2f share rounds to"
                policy.Tenant.name npages window share
          | _ -> ());
          [
            {
              tenant = policy.Tenant.name;
              quota = policy.Tenant.quota;
              pinned_cap;
              headroom = pinned_cap - npages;
            };
          ])
        (Array.to_list cfg.Tenant.policies)
  in
  (* (e) The SLO gate. *)
  (match slo.lat_us with
  | Some budget when lat_us > budget ->
    emit "UP40"
      "SLO violation: the sound worst-case translation latency is %.1f µs \
       (path %s, %d-page buffer), over the %.1f µs budget"
      lat_us
      (match paths with [] -> "-" | p :: _ -> p.path)
      npages budget
  | _ -> ());
  (match slo.pinned with
  | Some budget when pinned.total > budget ->
    emit "UP40"
      "SLO violation: the sound worst-case pinned population is %d \
       page(s) (%d per process x %d processes%s), over the %d-page budget"
      pinned.total pinned.per_process pinned.processes
      (if bounded then "" else "; no memory limit binds, so the bound is \
                               the whole address space")
      budget
  | _ -> ());
  {
    label;
    semantics = sem;
    npages;
    paths;
    lat_us;
    fault_us;
    pinned;
    tenants = tenant_bounds;
    findings = Finding.by_severity (List.rev !findings);
  }

let analyze_mech ?model ?faults ?tenants ?slo ?npages ?processes ~name ~params
    () =
  match Utlb.Sim_driver.Registry.find name with
  | None -> Error (Printf.sprintf "unknown mechanism %S" name)
  | Some entry -> (
    try
      Ok
        (analyze ?model ?faults ?tenants ?slo ?npages ?processes
           ~label:entry.Utlb.Sim_driver.Registry.name (entry.of_params params))
    with Invalid_argument msg -> Error msg)

(* {2 Config files} *)

let pages_of_mb mb = mb * 1024 * 1024 / Utlb_mem.Addr.page_size

let of_config (config : Config_file.t) =
  let cache =
    {
      Utlb.Ni_cache.entries = config.entries;
      associativity = config.associativity;
    }
  in
  let memory_limit_pages = Option.map pages_of_mb config.limit_mb in
  let packed =
    match config.engine with
    | Config_file.Utlb ->
      Utlb.Engine_intf.Packed
        ( (module Utlb.Hier_engine),
          {
            Utlb.Hier_engine.cache;
            prefetch = config.prefetch;
            prepin = config.prepin;
            policy = config.policy;
            memory_limit_pages;
          } )
    | Config_file.Intr ->
      Utlb.Engine_intf.Packed
        ((module Utlb.Intr_engine), { Utlb.Intr_engine.cache; memory_limit_pages })
    | Config_file.Per_process ->
      Utlb.Engine_intf.Packed
        ( (module Utlb.Pp_engine),
          {
            Utlb.Pp_engine.sram_budget_entries = config.sram_budget_entries;
            processes = config.processes;
            policy = config.policy;
          } )
  in
  (* Malformed anchor lists fall back to the paper defaults here; the
     configuration linter reports them with UC14x codes separately. *)
  let table anchors =
    try Some (Utlb_sim.Cost_table.create anchors)
    with Invalid_argument _ -> None
  in
  let model =
    Cost_model.create ~user_check_us:config.user_check_us
      ~ni_hit_us:config.ni_hit_us ~ni_direct_us:config.ni_direct_us
      ~intr_us:config.intr_us ~kernel_pin_us:config.kernel_pin_us
      ~kernel_unpin_us:config.kernel_unpin_us
      ~check_min_us:config.check_min_us
      ?pin_table:(table config.pin_table)
      ?unpin_table:(table config.unpin_table)
      ?ni_miss_table:(table config.ni_miss_table)
      ?dma_table:(table config.dma_table)
      ?check_max_table:(table config.check_max_table)
      ()
  in
  (packed, model)

(* {2 Witness targets} *)

let witness_target (scope : Stepper.scope) t =
  let cap = Stepper.capacity t.semantics in
  let pages = max 1 scope.Stepper.pages in
  let per_proc = min pages (if cap < max_int then max cap pages else pages) in
  max 1 scope.Stepper.procs * per_proc

(* {2 Rendering} *)

let pp ppf t =
  Format.fprintf ppf "bound %s: worst-case lookup %.1f us (path %s" t.label
    t.lat_us
    (match t.paths with [] -> "-" | p :: _ -> p.path);
  if t.fault_us > 0. then
    Format.fprintf ppf ", incl. %.1f us fault surcharge" t.fault_us;
  Format.fprintf ppf "), pinned <= %d/process" t.pinned.per_process;
  if not t.pinned.bounded then Format.fprintf ppf " (no limit binds)";
  Format.fprintf ppf " x %d processes = %d, npages <= %d" t.pinned.processes
    t.pinned.total t.npages;
  List.iter
    (fun tb ->
      Format.fprintf ppf "@\n  tenant %s: pinned <= %d%s, headroom %d"
        tb.tenant tb.pinned_cap
        (match tb.quota with
        | Some q -> Printf.sprintf " (quota %d)" q
        | None -> " (no quota)")
        tb.headroom)
    t.tenants

let pp_json ppf t =
  let e = Finding.json_escape in
  Format.fprintf ppf
    "{\"label\":\"%s\",\"mechanism\":\"%s\",\"npages\":%d,\"lat_us\":%.3f,\
     \"worst_path\":\"%s\",\"fault_us\":%.3f"
    (e t.label)
    (e (Stepper.mechanism t.semantics))
    t.npages t.lat_us
    (match t.paths with [] -> "-" | p :: _ -> e p.path)
    t.fault_us;
  Format.fprintf ppf ",\"paths\":[%s]"
    (String.concat ","
       (List.map
          (fun p -> Printf.sprintf "{\"path\":\"%s\",\"us\":%.3f}" (e p.path) p.us)
          t.paths));
  Format.fprintf ppf
    ",\"pinned\":{\"per_process\":%d,\"processes\":%d,\"total\":%d,\
     \"bounded\":%b}"
    t.pinned.per_process t.pinned.processes t.pinned.total t.pinned.bounded;
  Format.fprintf ppf ",\"tenants\":[%s]"
    (String.concat ","
       (List.map
          (fun tb ->
            Printf.sprintf
              "{\"tenant\":\"%s\",%s\"pinned_cap\":%d,\"headroom\":%d}"
              (e tb.tenant)
              (match tb.quota with
              | Some q -> Printf.sprintf "\"quota\":%d," q
              | None -> "")
              tb.pinned_cap tb.headroom)
          t.tenants));
  Format.fprintf ppf ",\"findings\":%a}" Finding.pp_json_list t.findings

let pp_json_list ppf ts =
  Format.fprintf ppf "[";
  List.iteri
    (fun i t ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@\n  %a" pp_json t)
    ts;
  if ts <> [] then Format.fprintf ppf "@\n";
  Format.fprintf ppf "]"
