(** Static semantic lint of simulation configurations.

    Catches the configuration mistakes that do not crash the simulator
    but silently corrupt its results — before any simulation runs.

    {2 Finding codes}

    Syntax (emitted by {!Config_file}):
    - [UC001] unparseable line; [UC002] unknown key; [UC003] invalid
      value; [UC004] duplicate key; [UC005] empty value.

    Cache geometry:
    - [UC101] entry count not positive;
    - [UC102] entry count not a multiple of the way count;
    - [UC103] set count not a power of two;
    - [UC104] (info) entry count outside the paper's 1K-16K sweep.

    Engine parameters:
    - [UC110] prefetch < 1; [UC111] prefetch exceeds cache capacity;
    - [UC112] prepin < 1; [UC113] (warning) prepin exceeds cache
      capacity; [UC114] prepin exceeds the translation-table VPN space;
    - [UC120] memory limit not positive; [UC121] memory limit smaller
      than one pre-pin window (every check miss would thrash);
    - [UC130] per-process engine with no processes; [UC131] SRAM budget
      not positive; [UC132] budget divides to zero entries per process;
      [UC133] (info) budget not evenly divisible.

    Cost tables and constants:
    - [UC140] empty anchor table; [UC141] duplicate anchor size;
      [UC142] non-positive anchor size; [UC143] negative latency;
    - [UC144] non-monotone cost table (a larger transfer must not be
      cheaper);
    - [UC150] negative scalar cost;
    - [UC151] NI-cache hit cost >= host entry-fetch (miss) cost — this
      silently inverts every paper result;
    - [UC152] DMA portion of a miss exceeds the total miss cost;
    - [UC153] best-case check cost exceeds worst-case check cost;
    - [UC154] (warning) user-level check costs as much as a kernel pin
      (the design premise of the paper would not hold);
    - [UC155] (warning) interrupt dispatch cheaper than an NI cache hit.

    Observability metrics:
    - [UC160] metric-name collision: a name was re-requested with a
      different collector kind (or histogram geometry), so the second
      collector is detached and its observations silently lost;
    - [UC161] (warning) metric name not namespaced as [component/name].

    Fault plans:
    - [UC170] fault spec does not parse (unknown class, malformed
      value);
    - [UC171] fault probability outside [0,1];
    - [UC172] negative retry budget or duration. *)

val lint_geometry :
  ?context:string -> Utlb.Ni_cache.config -> Finding.t list
(** Geometry checks UC101-UC104 — the same conditions
    [Ni_cache.create] enforces by exception, plus plausibility
    warnings, but reported as findings so they can gate CI before any
    code runs. *)

val lint_hier : ?context:string -> Utlb.Hier_engine.config -> Finding.t list
(** Hierarchical-UTLB engine config: geometry plus UC11x/UC12x. *)

val lint_intr : ?context:string -> Utlb.Intr_engine.config -> Finding.t list
(** Interrupt-baseline config: geometry plus UC120. *)

val lint_pp : ?context:string -> Utlb.Pp_engine.config -> Finding.t list
(** Per-process engine config: UC13x. *)

val lint_cost_anchors :
  ?context:string -> name:string -> (int * float) list -> Finding.t list
(** One cost table given as (size, cost) anchors: UC140-UC144. *)

val lint_cost_model : ?context:string -> Utlb.Cost_model.t -> Finding.t list
(** A built cost model, sampled at the paper's anchor sizes:
    UC143/UC144 per table plus the cross-table inversions UC150-UC155. *)

val lint_metrics : ?context:string -> Utlb_obs.Metrics.t -> Finding.t list
(** Metric-registry hygiene: UC160 for every recorded collision (see
    {!Utlb_obs.Metrics.collisions}), UC161 for names outside the
    [component/name] convention. *)

val lint_faults : ?context:string -> string -> Finding.t list
(** A raw fault-plan spec string: UC170 when it does not parse,
    UC171/UC172 for each out-of-range field (via
    {!Utlb_fault.Plan.validate}). *)

val lint_config : Config_file.t -> Finding.t list
(** Everything that applies to a parsed configuration: the selected
    engine's checks, all five cost tables, scalar costs, and the
    cross-table inversion checks. Parse findings are {e not} included —
    callers get those from {!Config_file.parse_string}. *)

val lint_defaults : unit -> Finding.t list
(** Lint the built-in paper defaults ({!Utlb.Hier_engine.default_config},
    {!Utlb.Intr_engine.default_config}, {!Utlb.Pp_engine.default_config}
    and {!Utlb.Cost_model.default}) plus the standard observability
    metric schema ({!Utlb_obs.Scope.preregister}, registered twice to
    prove idempotence). Must be clean; [utlbcheck --defaults] runs it
    in CI as a self-check. *)
