(* Benchmark harness entry point.

   With no arguments: regenerate every table and figure of the paper's
   evaluation, the policy ablation, and the Bechamel micro-benchmarks.
   With arguments: run only the named targets, e.g.

     dune exec bench/main.exe -- table4 figure8
     dune exec bench/main.exe -- micro *)

let usage () =
  prerr_endline
    "usage: main.exe [table1..table8|figure7|figure8|ablation|micro]...";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = Tables.all_named in
  let targets =
    match args with
    | [] -> List.map fst known @ [ "micro" ]
    | args ->
      List.iter
        (fun a ->
          if a <> "micro" && not (List.mem_assoc a known) then begin
            Printf.eprintf "unknown target %S\n" a;
            usage ()
          end)
        args;
      args
  in
  Printf.printf
    "UTLB reproduction benchmarks (seed %Ld). Rates come from trace-driven\n\
     simulation of the calibrated synthetic workloads; times apply the\n\
     paper's measured cost constants (see DESIGN.md and EXPERIMENTS.md).\n"
    42L;
  List.iter
    (fun target ->
      if target = "micro" then Micro.run () else (List.assoc target known) ())
    targets
