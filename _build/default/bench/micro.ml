(* Bechamel micro-benchmarks: one [Test.make] per table/figure, each
   measuring the core data-structure operation that dominates that
   experiment's fast path in a real (non-simulated) deployment. These
   complement the printed reproductions in [Tables]: the tables report
   the paper's cost-model numbers; these report what the OCaml
   implementation actually costs on this machine. *)

open Bechamel
open Toolkit
open Utlb

let rng = Utlb_sim.Rng.create ~seed:7L

(* Table 1: the user-level check is a pin bit-vector scan. *)
let test_table1 =
  let bv = Bitvec.create () in
  for vpn = 0 to 4095 do
    Bitvec.set bv vpn
  done;
  Test.make ~name:"table1/bitvec-check-8pages" (Staged.stage (fun () ->
      ignore (Bitvec.all_set bv ~vpn:1024 ~count:8)))

(* Table 2: the NI hit path is one Shared UTLB-Cache lookup. *)
let test_table2 =
  let cache =
    Ni_cache.create { Ni_cache.entries = 8192; associativity = Ni_cache.Direct }
  in
  let pid = Utlb_mem.Pid.of_int 1 in
  for vpn = 0 to 4095 do
    ignore (Ni_cache.insert cache ~pid ~vpn ~frame:vpn)
  done;
  Test.make ~name:"table2/ni-cache-hit" (Staged.stage (fun () ->
      ignore (Ni_cache.lookup cache ~pid ~vpn:2048)))

(* Table 3: trace statistics scan. *)
let test_table3 =
  let trace = Utlb_trace.Workloads.water.generate ~seed:7L in
  Test.make ~name:"table3/trace-footprint" (Staged.stage (fun () ->
      ignore (Utlb_trace.Trace.footprint_pages trace)))

(* Tables 4/5: a full UTLB lookup (check + NI translate) on the hot path. *)
let test_table4 =
  let engine = Hier_engine.create ~seed:7L Hier_engine.default_config in
  let pid = Utlb_mem.Pid.of_int 0 in
  ignore (Hier_engine.lookup engine ~pid ~vpn:100 ~npages:1);
  Test.make ~name:"table4/utlb-lookup-hit" (Staged.stage (fun () ->
      ignore (Hier_engine.lookup engine ~pid ~vpn:100 ~npages:1)))

let test_table5 =
  let engine =
    Hier_engine.create ~seed:7L
      { Hier_engine.default_config with memory_limit_pages = Some 64 }
  in
  let pid = Utlb_mem.Pid.of_int 0 in
  let vpn = ref 0 in
  Test.make ~name:"table5/utlb-lookup-evicting" (Staged.stage (fun () ->
      vpn := (!vpn + 1) land 0xFFFF;
      ignore (Hier_engine.lookup engine ~pid ~vpn:!vpn ~npages:1)))

(* Table 6: the cost-model equation itself. *)
let test_table6 =
  let model = Cost_model.default in
  let rates =
    { Cost_model.check_miss = 0.25; ni_miss = 0.4; unpin = 0.1; pin_pages = 1.0 }
  in
  Test.make ~name:"table6/cost-equation" (Staged.stage (fun () ->
      ignore (Cost_model.utlb_lookup_us model ~prefetch:1 rates)))

(* Table 7: pinning path — host memory pin/unpin round trip. *)
let test_table7 =
  let host = Utlb_mem.Host_memory.create ~frames:4096 () in
  let pid = Utlb_mem.Pid.of_int 0 in
  Utlb_mem.Host_memory.add_process host pid;
  Test.make ~name:"table7/pin-unpin-roundtrip" (Staged.stage (fun () ->
      match Utlb_mem.Host_memory.pin host pid ~vpn:10 ~count:16 with
      | Ok _ -> Utlb_mem.Host_memory.unpin host pid ~vpn:10 ~count:16
      | Error `Out_of_memory -> ()))

(* Table 8: set-associative lookup (4-way probes cost more in firmware). *)
let test_table8 =
  let cache =
    Ni_cache.create
      { Ni_cache.entries = 8192; associativity = Ni_cache.Four_way }
  in
  let pid = Utlb_mem.Pid.of_int 1 in
  for vpn = 0 to 4095 do
    ignore (Ni_cache.insert cache ~pid ~vpn ~frame:vpn)
  done;
  Test.make ~name:"table8/ni-cache-4way-hit" (Staged.stage (fun () ->
      ignore (Ni_cache.lookup cache ~pid ~vpn:1234)))

(* Figure 7: the three-C classifier per miss. *)
let test_figure7 =
  let classifier = Miss_classifier.create ~capacity:1024 in
  let pid = Utlb_mem.Pid.of_int 0 in
  let vpn = ref 0 in
  Test.make ~name:"figure7/miss-classify" (Staged.stage (fun () ->
      vpn := (!vpn + 1) land 0xFFF;
      ignore (Miss_classifier.classify classifier ~pid ~vpn:!vpn)))

(* Figure 8: translation-table reads that a prefetch burst performs. *)
let test_figure8 =
  let table =
    Translation_table.create ~garbage_frame:0 ~pid:(Utlb_mem.Pid.of_int 0) ()
  in
  for vpn = 0 to 1023 do
    Translation_table.install table ~vpn ~frame:(vpn + 1)
  done;
  Test.make ~name:"figure8/table-read-burst32" (Staged.stage (fun () ->
      for vpn = 64 to 95 do
        ignore (Translation_table.lookup table ~vpn)
      done))

(* Replacement-policy ablation: victim selection under load. *)
let test_ablation =
  let tracker = Replacement.create Replacement.Lru ~rng in
  for page = 0 to 1023 do
    Replacement.insert tracker page
  done;
  let n = ref 1024 in
  Test.make ~name:"ablation/lru-evict-insert" (Staged.stage (fun () ->
      match Replacement.select_victim tracker () with
      | Some _ ->
        Replacement.insert tracker !n;
        incr n
      | None -> ()))

(* Substrate micro-benchmarks beyond the paper's tables. *)

let test_crc32 =
  let payload = Bytes.create 4096 in
  Test.make ~name:"net/crc32-4KB" (Staged.stage (fun () ->
      ignore (Utlb_net.Packet.crc32 payload)))

let test_memory_image =
  let m = Utlb_vmmc.Memory_image.create () in
  let data = Bytes.create 4096 in
  Test.make ~name:"vmmc/memory-image-page-write" (Staged.stage (fun () ->
      Utlb_vmmc.Memory_image.write m ~vaddr:8192 data))

let test_event_engine =
  let engine = Utlb_sim.Engine.create () in
  Test.make ~name:"sim/schedule+fire" (Staged.stage (fun () ->
      ignore
        (Utlb_sim.Engine.schedule engine ~delay:(Utlb_sim.Time.of_us 1.0)
           (fun () -> ()));
      ignore (Utlb_sim.Engine.step engine)))

let test_reuse_distance =
  let trace = Utlb_trace.Workloads.volrend.generate ~seed:7L in
  Test.make ~name:"trace/reuse-distance-sweep" (Staged.stage (fun () ->
      ignore (Utlb_trace.Analysis.reuse_distances trace)))

let all_tests =
  Test.make_grouped ~name:"utlb" ~fmt:"%s %s"
    [
      test_table1; test_table2; test_table3; test_table4; test_table5;
      test_table6; test_table7; test_table8; test_figure7; test_figure8;
      test_ablation; test_crc32; test_memory_image; test_event_engine;
      test_reuse_distance;
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]) instances results in
  Printf.printf "\nBechamel micro-benchmarks (ns per operation)\n";
  Printf.printf "%s\n" (String.make 60 '=');
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (e :: _) -> Printf.printf "%-40s %12.1f ns\n" name e
          | Some [] | None -> Printf.printf "%-40s %12s\n" name "n/a")
        tbl)
    results
