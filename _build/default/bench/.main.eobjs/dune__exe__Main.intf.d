bench/main.mli:
