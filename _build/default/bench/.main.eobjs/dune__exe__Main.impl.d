bench/main.ml: Array List Micro Printf Sys Tables
