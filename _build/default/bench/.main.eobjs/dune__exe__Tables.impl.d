bench/tables.ml: Array Bytes Cost_model Float Hashtbl Hier_engine Intr_engine List Ni_cache Pp_engine Printf Replacement Report Sim_driver String Utlb Utlb_mem Utlb_msg Utlb_trace Utlb_vmmc
