lib/msg/msg.mli: Utlb_vmmc
