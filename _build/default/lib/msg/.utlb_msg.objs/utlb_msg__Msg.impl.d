lib/msg/msg.ml: Bytes Hashtbl Int32 Int64 List Printf Utlb_mem Utlb_vmmc
