lib/msg/collective.ml: Array Bytes Msg
