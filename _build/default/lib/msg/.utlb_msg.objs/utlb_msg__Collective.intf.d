lib/msg/collective.mli: Msg
