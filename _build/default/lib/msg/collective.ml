type group = {
  members : Msg.t array;
  addresses : Msg.address array;
  mutable messages : int;
}

(* Collective tags live above application tags; the round number is
   encoded so concurrent rounds cannot be confused. *)
let tag_base = 0x7C00

let group members =
  if Array.length members < 2 then
    invalid_arg "Collective.group: need at least two members";
  let addresses = Array.map Msg.address members in
  Array.iter
    (fun m -> Array.iter (fun addr -> Msg.connect m addr) addresses)
    members;
  { members; addresses; messages = 0 }

let size g = Array.length g.members

let send g ~src ~dst ~tag payload =
  Msg.send g.members.(src) ~dest:g.addresses.(dst) ~tag payload;
  g.messages <- g.messages + 1

let recv g ~rank ~tag = snd (Msg.recv_blocking g.members.(rank) ~tag ())

(* Binomial tree rooted at [root]: in round k, ranks below 2^k (in
   root-relative space) send to rank + 2^k. *)
let broadcast g ~root payload =
  let p = size g in
  if root < 0 || root >= p then invalid_arg "Collective.broadcast: bad root";
  let received = Array.make p Bytes.empty in
  received.(root) <- payload;
  let have = Array.make p false in
  have.(root) <- true;
  let abs rel_rank = (rel_rank + root) mod p in
  let rounds = ref 0 in
  while 1 lsl !rounds < p do
    let k = !rounds in
    let stride = 1 lsl k in
    for r = 0 to stride - 1 do
      let dst_rel = r + stride in
      if dst_rel < p then begin
        let src = abs r and dst = abs dst_rel in
        assert have.(src);
        send g ~src ~dst ~tag:(tag_base + k) received.(src);
        received.(dst) <- recv g ~rank:dst ~tag:(tag_base + k);
        have.(dst) <- true
      end
    done;
    incr rounds
  done;
  received

let barrier g =
  let p = size g in
  let token = Bytes.empty in
  let round = ref 0 in
  while 1 lsl !round < p do
    let stride = 1 lsl !round in
    let tag = tag_base + 0x40 + !round in
    (* Dissemination: every rank sends to (rank + stride) mod p, then
       waits for the message from (rank - stride) mod p. *)
    for rank = 0 to p - 1 do
      send g ~src:rank ~dst:((rank + stride) mod p) ~tag token
    done;
    for rank = 0 to p - 1 do
      ignore (recv g ~rank ~tag)
    done;
    incr round
  done

let reduce g ~root ~combine contributions =
  let p = size g in
  if Array.length contributions <> p then
    invalid_arg "Collective.reduce: one contribution per rank required";
  if root < 0 || root >= p then invalid_arg "Collective.reduce: bad root";
  let acc = Array.copy contributions in
  let abs rel_rank = (rel_rank + root) mod p in
  (* Binomial gather: in round k (ascending), rank r+2^k sends its
     partial result to rank r, so neighbours combine before larger
     strides. *)
  let max_round = ref 0 in
  while 1 lsl (!max_round + 1) < p do
    incr max_round
  done;
  for k = 0 to !max_round do
    let stride = 1 lsl k in
    let r = ref 0 in
    while !r + stride < p do
      let dst = abs !r and src = abs (!r + stride) in
      send g ~src ~dst ~tag:(tag_base + 0x80 + k) acc.(src);
      let partial = recv g ~rank:dst ~tag:(tag_base + 0x80 + k) in
      acc.(dst) <- combine acc.(dst) partial;
      r := !r + (2 * stride)
    done
  done;
  acc.(root)

let all_to_all g data =
  let p = size g in
  if Array.length data <> p then
    invalid_arg "Collective.all_to_all: one row per rank required";
  Array.iter
    (fun row ->
      if Array.length row <> p then
        invalid_arg "Collective.all_to_all: square matrix required")
    data;
  let received = Array.make_matrix p p Bytes.empty in
  (* Shifted exchange: in step s, rank i sends to (i + s) mod p, which
     spreads load across the fabric instead of hammering one receiver. *)
  for s = 1 to p - 1 do
    let tag = tag_base + 0xC0 + s in
    for i = 0 to p - 1 do
      let j = (i + s) mod p in
      send g ~src:i ~dst:j ~tag data.(i).(j)
    done;
    for j = 0 to p - 1 do
      let i = (j - s + p) mod p in
      received.(j).(i) <- recv g ~rank:j ~tag
    done
  done;
  for i = 0 to p - 1 do
    received.(i).(i) <- data.(i).(i)
  done;
  received

let messages_exchanged g = g.messages
