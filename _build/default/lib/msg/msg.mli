(** Tagged message passing over VMMC.

    The paper motivates UTLB with zero-copy implementations of
    "high-level communication APIs" layered on VMMC. This module is such
    a layer: endpoints exchange arbitrary-size tagged messages over
    remote stores, with

    - {e fragmentation}: messages split into page-slot fragments and
      reassemble at the receiver;
    - {e credit-based flow control}: each sender owns a fixed window of
      the receiver's slot ring; credits return over VMMC when the
      application consumes a message (no blocking inside the NI);
    - {e tag matching}: receives can filter by tag, in arrival order.

    Everything under the hood is remote stores into exported buffers,
    so every byte moves through UTLB translation on both sides.

    Endpoints live on cluster nodes; [send]/[recv_blocking] drive the
    simulation engine internally, so code reads like blocking MPI. *)

type t
(** An endpoint. *)

type address
(** Transferable endpoint name (export ids + keys). *)

exception Deadlock of string
(** Raised when a blocking operation can make no further progress (the
    event engine drained without satisfying it). *)

val create : Utlb_vmmc.Cluster.t -> node:int -> ?window:int -> unit -> t
(** [create cluster ~node ~window ()] spawns a process on [node] with a
    slot ring granting [window] slots (default 8, 4 KB each) to each of
    up to 16 sender endpoints.
    @raise Invalid_argument if [window < 1]. *)

val address : t -> address

val node : t -> int

val connect : t -> address -> unit
(** Prepare to send to a peer (imports its windows). Idempotent.
    Receiving requires no connect. *)

val send : t -> dest:address -> tag:int -> bytes -> unit
(** Blocking send: fragments the payload into the peer's slot window,
    waiting for credits when the window is full.
    @raise Invalid_argument on negative tags or if [dest] was never
    [connect]ed.
    @raise Deadlock if the window is full and no credit can ever
    arrive. *)

val recv : t -> ?tag:int -> unit -> (int * bytes) option
(** Non-blocking: the oldest completed message (matching [tag] when
    given), or [None]. Consuming a message returns its slots' credits
    to the sender. *)

val recv_blocking : t -> ?tag:int -> unit -> int * bytes
(** Drive the simulation until a matching message arrives.
    @raise Deadlock when the engine drains with no matching message. *)

val pending : t -> int
(** Completed messages waiting to be received. *)

(** {2 Statistics} *)

val messages_sent : t -> int

val messages_received : t -> int

val fragments_sent : t -> int

val credit_stalls : t -> int
(** Times a send had to wait for window credits. *)
