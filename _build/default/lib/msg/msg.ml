module Cluster = Utlb_vmmc.Cluster
module Process = Cluster.Process

exception Deadlock of string

let slot_bytes = 4096

let header_bytes = 32

let max_fragment = slot_bytes - header_bytes

let max_endpoints = 16

(* Virtual layout inside every endpoint process. *)
let data_base = 0x3000000

let credit_base = 0x3800000

let staging_base = 0x4000000

type address = {
  a_node : int;
  a_pid : int;
  a_window : int;
  a_data_export : int;
  a_data_key : int;
  a_credit_export : int;
  a_credit_key : int;
}

type peer_state = {
  addr : address;
  data_import : Process.import;
  mutable slots_used : int; (* cumulative fragments sent *)
}

(* Credits flow back through the sender's credit window: the receiver
   remote-stores a cumulative freed-slot counter at the cell indexed by
   its own pid. *)
type credit_link = {
  credit_import : Process.import;
  mutable freed : int;
}

type completed = { c_tag : int; c_payload : bytes }

type assembly = {
  total_len : int;
  tag : int;
  buffer : bytes;
  mutable received : int;
  mutable fragments : int;
}

type t = {
  cluster : Cluster.t;
  proc : Cluster.process;
  node : int;
  pid : int;
  window : int;
  data_export : int;
  data_key : int;
  credit_export : int;
  credit_key : int;
  peers : (int * int, peer_state) Hashtbl.t; (* (node, pid) -> state *)
  credit_links : (int, credit_link) Hashtbl.t; (* sender pid -> link *)
  assemblies : (int * int, assembly) Hashtbl.t; (* (sender pid, msg id) *)
  mutable completed : completed list; (* oldest last *)
  mutable next_msg_id : int;
  mutable messages_sent : int;
  mutable messages_received : int;
  mutable fragments_sent : int;
  mutable credit_stalls : int;
}

let node t = t.node

let create cluster ~node ?(window = 8) () =
  if window < 1 then invalid_arg "Msg.create: window must be >= 1";
  let proc = Cluster.spawn cluster ~node in
  let pid = Utlb_mem.Pid.to_int (Process.pid proc) in
  if pid >= max_endpoints then
    invalid_arg "Msg.create: at most 16 endpoint pids are supported";
  let data_export, data_key =
    Process.export proc ~vaddr:data_base
      ~len:(max_endpoints * window * slot_bytes)
  in
  let credit_export, credit_key =
    Process.export proc ~vaddr:credit_base ~len:(max_endpoints * 8)
  in
  Cluster.run cluster;
  {
    cluster;
    proc;
    node;
    pid;
    window;
    data_export;
    data_key;
    credit_export;
    credit_key;
    peers = Hashtbl.create 8;
    credit_links = Hashtbl.create 8;
    assemblies = Hashtbl.create 8;
    completed = [];
    next_msg_id = 0;
    messages_sent = 0;
    messages_received = 0;
    fragments_sent = 0;
    credit_stalls = 0;
  }

let address t =
  {
    a_node = t.node;
    a_pid = t.pid;
    a_window = t.window;
    a_data_export = t.data_export;
    a_data_key = t.data_key;
    a_credit_export = t.credit_export;
    a_credit_key = t.credit_key;
  }

let connect t addr =
  let key = (addr.a_node, addr.a_pid) in
  if not (Hashtbl.mem t.peers key) then begin
    let data_import =
      Process.import t.proc ~node:addr.a_node ~export_id:addr.a_data_export
        ~key:addr.a_data_key
    in
    Hashtbl.replace t.peers key { addr; data_import; slots_used = 0 }
  end

(* The receiver reports cumulative freed slots by storing into our
   credit window cell indexed by its pid; we read it from our own
   memory. *)
let credits_freed_by t receiver_pid =
  let cell =
    Process.read_memory t.proc ~vaddr:(credit_base + (receiver_pid * 8)) ~len:8
  in
  Int64.to_int (Bytes.get_int64_le cell 0)

let available_credits t peer =
  peer.slots_used - credits_freed_by t peer.addr.a_pid
  |> fun in_flight -> peer.addr.a_window - in_flight

(* Fragment header: sender pid/node, credit window coordinates (so the
   receiver can return credits without any out-of-band state), message
   id, tag, total length, fragment offset. *)
let write_header b ~sender_pid ~sender_node ~credit_export ~credit_key
    ~msg_id ~tag ~total_len ~frag_off =
  Bytes.set_int32_le b 0 (Int32.of_int sender_pid);
  Bytes.set_int32_le b 4 (Int32.of_int sender_node);
  Bytes.set_int32_le b 8 (Int32.of_int credit_export);
  Bytes.set_int32_le b 12 (Int32.of_int credit_key);
  Bytes.set_int32_le b 16 (Int32.of_int msg_id);
  Bytes.set_int32_le b 20 (Int32.of_int tag);
  Bytes.set_int32_le b 24 (Int32.of_int total_len);
  Bytes.set_int32_le b 28 (Int32.of_int frag_off)

type header = {
  h_sender_pid : int;
  h_sender_node : int;
  h_credit_export : int;
  h_credit_key : int;
  h_msg_id : int;
  h_tag : int;
  h_total_len : int;
  h_frag_off : int;
}

let read_header b =
  let f off = Int32.to_int (Bytes.get_int32_le b off) in
  {
    h_sender_pid = f 0;
    h_sender_node = f 4;
    h_credit_export = f 8;
    h_credit_key = f 12;
    h_msg_id = f 16;
    h_tag = f 20;
    h_total_len = f 24;
    h_frag_off = f 28;
  }

(* Drain the endpoint's VMMC notifications into message assemblies. *)
let process_notifications t =
  let rec drain () =
    match Process.poll_notification t.proc with
    | None -> ()
    | Some n ->
      if n.Process.n_export_id = t.data_export then begin
        let slot_base = n.Process.n_offset - (n.Process.n_offset mod slot_bytes) in
        let raw =
          Process.read_memory t.proc ~vaddr:(data_base + slot_base)
            ~len:(min slot_bytes n.Process.n_len)
        in
        let h = read_header raw in
        let key = (h.h_sender_pid, h.h_msg_id) in
        let asm =
          match Hashtbl.find_opt t.assemblies key with
          | Some asm -> asm
          | None ->
            let asm =
              {
                total_len = h.h_total_len;
                tag = h.h_tag;
                buffer = Bytes.create h.h_total_len;
                received = 0;
                fragments = 0;
              }
            in
            Hashtbl.replace t.assemblies key asm;
            asm
        in
        let frag_len = min (h.h_total_len - h.h_frag_off) max_fragment in
        Bytes.blit raw header_bytes asm.buffer h.h_frag_off frag_len;
        asm.received <- asm.received + frag_len;
        asm.fragments <- asm.fragments + 1;
        if asm.received >= asm.total_len then begin
          Hashtbl.remove t.assemblies key;
          t.completed <-
            { c_tag = asm.tag; c_payload = asm.buffer } :: t.completed;
          t.messages_received <- t.messages_received + 1;
          (* Return the message's slots to the sender. *)
          let link =
            match Hashtbl.find_opt t.credit_links h.h_sender_pid with
            | Some link -> link
            | None ->
              let credit_import =
                Process.import t.proc ~node:h.h_sender_node
                  ~export_id:h.h_credit_export ~key:h.h_credit_key
              in
              let link = { credit_import; freed = 0 } in
              Hashtbl.replace t.credit_links h.h_sender_pid link;
              link
          in
          link.freed <- link.freed + max 1 asm.fragments;
          let cell = Bytes.create 8 in
          Bytes.set_int64_le cell 0 (Int64.of_int link.freed);
          let scratch = staging_base + 0x100000 + (h.h_sender_pid * 64) in
          Process.write_memory t.proc ~vaddr:scratch cell;
          Process.send t.proc link.credit_import ~lvaddr:scratch
            ~offset:(t.pid * 8) ~len:8
        end
      end;
      drain ()
  in
  drain ()

let fragments_of len = max 1 ((len + max_fragment - 1) / max_fragment)

let send t ~dest ~tag payload =
  if tag < 0 then invalid_arg "Msg.send: negative tag";
  let key = (dest.a_node, dest.a_pid) in
  let peer =
    match Hashtbl.find_opt t.peers key with
    | Some p -> p
    | None -> invalid_arg "Msg.send: destination not connected"
  in
  let total_len = Bytes.length payload in
  if fragments_of total_len > peer.addr.a_window then
    invalid_arg
      (Printf.sprintf
         "Msg.send: message needs %d fragments but the peer window is %d           slots (max message %d bytes)"
         (fragments_of total_len) peer.addr.a_window
         (peer.addr.a_window * max_fragment));
  let msg_id = t.next_msg_id in
  t.next_msg_id <- msg_id + 1;
  let nfrags = fragments_of total_len in
  for f = 0 to nfrags - 1 do
    (* Wait for one slot of credit. *)
    let stalled = ref false in
    while available_credits t peer <= 0 do
      if !stalled then
        raise
          (Deadlock
             (Printf.sprintf
                "Msg.send: no credits from endpoint %d on node %d \
                 (receiver not consuming?)"
                dest.a_pid dest.a_node));
      t.credit_stalls <- t.credit_stalls + 1;
      stalled := true;
      process_notifications t;
      Cluster.run t.cluster
    done;
    let frag_off = f * max_fragment in
    let frag_len = min max_fragment (total_len - frag_off) in
    let slot_index = peer.slots_used mod peer.addr.a_window in
    peer.slots_used <- peer.slots_used + 1;
    (* Stage header + fragment and store it into our region of the
       peer's ring. *)
    let buf = Bytes.create (header_bytes + frag_len) in
    write_header buf ~sender_pid:t.pid ~sender_node:t.node
      ~credit_export:t.credit_export ~credit_key:t.credit_key ~msg_id ~tag
      ~total_len ~frag_off;
    Bytes.blit payload frag_off buf header_bytes frag_len;
    let scratch = staging_base + (slot_index * slot_bytes) in
    Process.write_memory t.proc ~vaddr:scratch buf;
    let dest_offset =
      ((t.pid * peer.addr.a_window) + slot_index) * slot_bytes
    in
    Process.send t.proc peer.data_import ~lvaddr:scratch ~offset:dest_offset
      ~len:(Bytes.length buf);
    t.fragments_sent <- t.fragments_sent + 1
  done;
  t.messages_sent <- t.messages_sent + 1;
  Cluster.run t.cluster

let take_completed t tag_filter =
  let matches c =
    match tag_filter with None -> true | Some tag -> c.c_tag = tag
  in
  (* [completed] is newest-first; consume the oldest match. *)
  let rec split acc = function
    | [] -> None
    | [ c ] when matches c -> Some (c, List.rev acc)
    | c :: rest ->
      (match split (c :: acc) rest with
      | Some _ as found -> found
      | None -> if matches c then Some (c, List.rev acc @ rest) else None)
  in
  match split [] t.completed with
  | None -> None
  | Some (c, rest) ->
    t.completed <- rest;
    Some (c.c_tag, c.c_payload)

let recv t ?tag () =
  process_notifications t;
  let result = take_completed t tag in
  (* Push any credit-return stores out. *)
  Cluster.run t.cluster;
  result

let recv_blocking t ?tag () =
  let rec wait tries =
    match recv t ?tag () with
    | Some m -> m
    | None ->
      if tries = 0 then
        raise (Deadlock "Msg.recv_blocking: engine drained with no message");
      Cluster.run t.cluster;
      wait (tries - 1)
  in
  (* Two rounds are enough: one to drain in-flight traffic, one to
     confirm quiescence. *)
  wait 2

let pending t =
  process_notifications t;
  List.length t.completed

let messages_sent t = t.messages_sent

let messages_received t = t.messages_received

let fragments_sent t = t.fragments_sent

let credit_stalls t = t.credit_stalls
