(** Piecewise-linear cost curves.

    The paper reports costs at a handful of operand sizes (1, 2, 4, 8,
    16, 32 pages or entries).  A [Cost_table.t] stores those anchor
    points and answers queries at any size by linear interpolation
    between anchors and linear extrapolation from the last segment —
    matching how DMA setup + per-word costs actually compose. *)

type t

val create : (int * float) list -> t
(** [create points] from [(size, cost)] anchors. Sizes must be distinct
    and positive; the list is sorted internally.
    @raise Invalid_argument on an empty list, non-positive sizes, or
    duplicate sizes. *)

val eval : t -> int -> float
(** [eval t n] is the interpolated cost at size [n >= 1]. Queries below
    the first anchor clamp to the first anchor's cost.
    @raise Invalid_argument if [n < 1]. *)

val anchors : t -> (int * float) list
(** The anchor points, ascending by size. *)

val linear_fit : intercept:float -> slope:float -> t
(** [linear_fit ~intercept ~slope] is the exact line
    [cost n = intercept + slope * n], represented with two anchors. *)
