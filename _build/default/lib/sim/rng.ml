type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create ~seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
