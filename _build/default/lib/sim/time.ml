type t = int64

let zero = 0L

let of_ns n = Int64.of_int n

let of_us x = Int64.of_float (Float.round (x *. 1000.0))

let to_us t = Int64.to_float t /. 1000.0

let to_ms t = Int64.to_float t /. 1_000_000.0

let add = Int64.add

let sub = Int64.sub

let compare = Int64.compare

let ( + ) = add

let ( - ) = sub

let ( < ) a b = Int64.compare a b < 0

let ( <= ) a b = Int64.compare a b <= 0

let max a b = if Int64.compare a b >= 0 then a else b

let pp ppf t = Format.fprintf ppf "%.3fus" (to_us t)
