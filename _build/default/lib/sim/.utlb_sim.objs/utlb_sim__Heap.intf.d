lib/sim/heap.mli:
