lib/sim/rng.mli:
