lib/sim/utlb_sim.ml: Cost_table Engine Heap Rng Stats Time
