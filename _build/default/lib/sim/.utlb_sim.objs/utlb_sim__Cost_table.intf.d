lib/sim/cost_table.mli:
