lib/sim/cost_table.ml: Array List
