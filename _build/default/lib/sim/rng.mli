(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through a [Rng.t] so
    that every experiment is reproducible from a seed.  The generator is
    SplitMix64: fast, well-distributed, and trivially splittable, which
    lets each simulated process own an independent stream. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] samples the number of failures before the first
    success of a Bernoulli(p) trial; used for bursty workload lengths.
    @raise Invalid_argument if [p] is outside (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)
