type t = { sizes : int array; costs : float array }

let create points =
  if points = [] then invalid_arg "Cost_table.create: empty anchor list";
  List.iter
    (fun (n, _) ->
      if n <= 0 then invalid_arg "Cost_table.create: sizes must be positive")
    points;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) points in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg "Cost_table.create: duplicate size";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  {
    sizes = Array.of_list (List.map fst sorted);
    costs = Array.of_list (List.map snd sorted);
  }

let anchors t =
  Array.to_list (Array.mapi (fun i n -> (n, t.costs.(i))) t.sizes)

let segment_eval t i n =
  (* Interpolate on the segment between anchors i and i+1. *)
  let x0 = float_of_int t.sizes.(i) and x1 = float_of_int t.sizes.(i + 1) in
  let y0 = t.costs.(i) and y1 = t.costs.(i + 1) in
  y0 +. ((y1 -. y0) *. (float_of_int n -. x0) /. (x1 -. x0))

let eval t n =
  if n < 1 then invalid_arg "Cost_table.eval: size must be >= 1";
  let last = Array.length t.sizes - 1 in
  if n <= t.sizes.(0) then t.costs.(0)
  else if n >= t.sizes.(last) then
    if last = 0 then t.costs.(0) else segment_eval t (last - 1) n
  else begin
    (* Binary search for the segment containing n. *)
    let lo = ref 0 and hi = ref last in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.sizes.(mid) <= n then lo := mid else hi := mid
    done;
    if t.sizes.(!lo) = n then t.costs.(!lo) else segment_eval t !lo n
  end

let linear_fit ~intercept ~slope =
  create [ (1, intercept +. slope); (2, intercept +. (2.0 *. slope)) ]
