(** Simulated time.

    Time is an integer count of nanoseconds since simulation start.
    Nanosecond granularity keeps every cost in the paper (expressed in
    microseconds with one decimal) exactly representable, so no rounding
    drift accumulates across millions of events. *)

type t = int64
(** Nanoseconds. Always non-negative in a running simulation. *)

val zero : t

val of_ns : int -> t

val of_us : float -> t
(** [of_us x] converts microseconds to nanoseconds, rounding to nearest. *)

val to_us : t -> float

val to_ms : t -> float

val add : t -> t -> t

val sub : t -> t -> t

val compare : t -> t -> int

val ( + ) : t -> t -> t

val ( - ) : t -> t -> t

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as microseconds with three decimals, e.g. ["12.500us"]. *)
