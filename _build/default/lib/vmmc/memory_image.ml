let page_size = Utlb_mem.Addr.page_size

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let page t vpn =
  match Hashtbl.find_opt t.pages vpn with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.replace t.pages vpn p;
    p

let check vaddr len =
  if vaddr < 0 then invalid_arg "Memory_image: negative address";
  if len < 0 then invalid_arg "Memory_image: negative length"

let write t ~vaddr data =
  check vaddr (Bytes.length data);
  let len = Bytes.length data in
  let rec go src_off addr =
    if src_off < len then begin
      let vpn = addr / page_size and off = addr mod page_size in
      let n = min (page_size - off) (len - src_off) in
      Bytes.blit data src_off (page t vpn) off n;
      go (src_off + n) (addr + n)
    end
  in
  go 0 vaddr

let read t ~vaddr ~len =
  check vaddr len;
  let out = Bytes.create len in
  let rec go dst_off addr =
    if dst_off < len then begin
      let vpn = addr / page_size and off = addr mod page_size in
      let n = min (page_size - off) (len - dst_off) in
      (match Hashtbl.find_opt t.pages vpn with
      | Some p -> Bytes.blit p off out dst_off n
      | None -> Bytes.fill out dst_off n '\000');
      go (dst_off + n) (addr + n)
    end
  in
  go 0 vaddr;
  out

let fill t ~vaddr ~len c = write t ~vaddr (Bytes.make len c)

let pages_touched t = Hashtbl.length t.pages
