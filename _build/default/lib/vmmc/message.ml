type t =
  | Store of { export_id : int; key : int; offset : int; data : bytes }
  | Fetch_request of {
      req_id : int;
      export_id : int;
      key : int;
      offset : int;
      len : int;
    }
  | Fetch_reply of { req_id : int; ok : bool; data : bytes }

let kind_name = function
  | Store _ -> "store"
  | Fetch_request _ -> "fetch-request"
  | Fetch_reply _ -> "fetch-reply"

(* Layout: 1-byte tag, fixed 32-bit/64-bit little-endian header fields,
   then the variable-length data. *)

let to_bytes t =
  match t with
  | Store { export_id; key; offset; data } ->
    let b = Bytes.create (1 + 4 + 4 + 8 + Bytes.length data) in
    Bytes.set b 0 '\001';
    Bytes.set_int32_le b 1 (Int32.of_int export_id);
    Bytes.set_int32_le b 5 (Int32.of_int key);
    Bytes.set_int64_le b 9 (Int64.of_int offset);
    Bytes.blit data 0 b 17 (Bytes.length data);
    b
  | Fetch_request { req_id; export_id; key; offset; len } ->
    let b = Bytes.create (1 + 4 + 4 + 4 + 8 + 4) in
    Bytes.set b 0 '\002';
    Bytes.set_int32_le b 1 (Int32.of_int req_id);
    Bytes.set_int32_le b 5 (Int32.of_int export_id);
    Bytes.set_int32_le b 9 (Int32.of_int key);
    Bytes.set_int64_le b 13 (Int64.of_int offset);
    Bytes.set_int32_le b 21 (Int32.of_int len);
    b
  | Fetch_reply { req_id; ok; data } ->
    let b = Bytes.create (1 + 4 + 1 + Bytes.length data) in
    Bytes.set b 0 '\003';
    Bytes.set_int32_le b 1 (Int32.of_int req_id);
    Bytes.set b 5 (if ok then '\001' else '\000');
    Bytes.blit data 0 b 6 (Bytes.length data);
    b

let of_bytes b =
  let len = Bytes.length b in
  if len < 1 then Error "empty message"
  else
    let i32 off = Int32.to_int (Bytes.get_int32_le b off) in
    let i64 off = Int64.to_int (Bytes.get_int64_le b off) in
    match Bytes.get b 0 with
    | '\001' ->
      if len < 17 then Error "short store header"
      else
        Ok
          (Store
             {
               export_id = i32 1;
               key = i32 5;
               offset = i64 9;
               data = Bytes.sub b 17 (len - 17);
             })
    | '\002' ->
      if len < 25 then Error "short fetch-request"
      else
        Ok
          (Fetch_request
             {
               req_id = i32 1;
               export_id = i32 5;
               key = i32 9;
               offset = i64 13;
               len = i32 21;
             })
    | '\003' ->
      if len < 6 then Error "short fetch-reply"
      else
        Ok
          (Fetch_reply
             {
               req_id = i32 1;
               ok = Bytes.get b 5 = '\001';
               data = Bytes.sub b 6 (len - 6);
             })
    | _ -> Error "unknown message tag"
