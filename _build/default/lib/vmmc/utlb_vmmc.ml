(** VMMC: protected user-level communication over the simulated cluster,
    with Hierarchical-UTLB address translation on both sides of every
    transfer. *)

module Message = Message
module Memory_image = Memory_image
module Cluster = Cluster
