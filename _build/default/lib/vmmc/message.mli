(** VMMC wire messages.

    Three message kinds travel between NIs over the reliable channels:
    remote stores (the basic VMMC send), remote-fetch requests, and
    remote-fetch replies (the VMMC-2 extension). Messages serialise to
    packet payloads; the firmware never trusts a payload — parsing
    returns [Error] on malformed input. *)

type t =
  | Store of { export_id : int; key : int; offset : int; data : bytes }
      (** Write [data] into the exported buffer at [offset]. *)
  | Fetch_request of {
      req_id : int;
      export_id : int;
      key : int;
      offset : int;
      len : int;
    }
  | Fetch_reply of { req_id : int; ok : bool; data : bytes }

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, string) result

val kind_name : t -> string
