(** A process's virtual-memory contents.

    Sparse page-granular byte store standing in for the application's
    address space: the DMA engine reads send buffers from it and
    deposits received data into it, so end-to-end tests can verify that
    zero-copy transfers deliver bytes intact. Pages materialise
    zero-filled on first touch. *)

type t

val create : unit -> t

val write : t -> vaddr:int -> bytes -> unit
(** @raise Invalid_argument on a negative address. *)

val read : t -> vaddr:int -> len:int -> bytes
(** Untouched ranges read as zeros.
    @raise Invalid_argument on negative address or length. *)

val fill : t -> vaddr:int -> len:int -> char -> unit

val pages_touched : t -> int
