lib/vmmc/cluster.mli: Utlb Utlb_mem Utlb_net Utlb_nic Utlb_sim
