lib/vmmc/message.mli:
