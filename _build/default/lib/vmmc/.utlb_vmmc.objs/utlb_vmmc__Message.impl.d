lib/vmmc/message.ml: Bytes Int32 Int64
