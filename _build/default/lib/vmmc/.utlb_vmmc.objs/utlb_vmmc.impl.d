lib/vmmc/utlb_vmmc.ml: Cluster Memory_image Message
