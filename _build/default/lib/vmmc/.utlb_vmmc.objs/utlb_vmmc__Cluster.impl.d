lib/vmmc/cluster.ml: Array Bytes Hashtbl List Logs Memory_image Message Option Printf Queue Utlb Utlb_mem Utlb_net Utlb_nic Utlb_sim
