lib/vmmc/memory_image.ml: Bytes Hashtbl Utlb_mem
