lib/vmmc/memory_image.mli:
