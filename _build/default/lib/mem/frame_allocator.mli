(** Physical frame allocator.

    Manages the pool of host DRAM frames. Frame 0 is reserved at
    creation for the driver's pinned "garbage page" (Section 4.2 of the
    paper): translation-table entries are initialised to it so the NI
    never dereferences an invalid index. *)

type t

val create : frames:int -> t
(** [create ~frames] manages frames [0 .. frames-1]; frame 0 is
    immediately reserved as the garbage frame.
    @raise Invalid_argument if [frames < 2]. *)

val garbage_frame : t -> int
(** Always 0; pinned forever. *)

val total : t -> int

val free_count : t -> int

val in_use : t -> int

val alloc : t -> int option
(** Take a free frame, or [None] when DRAM is exhausted. *)

val free : t -> int -> unit
(** Return a frame to the pool.
    @raise Invalid_argument on the garbage frame, an out-of-range frame,
    or a double free. *)

val is_allocated : t -> int -> bool
