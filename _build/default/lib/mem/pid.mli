(** Process identifiers.

    A [Pid.t] names one communicating process on a node. The Shared
    UTLB-Cache tags every entry with the owning process (the paper's
    4-bit process tag), so pids are first-class across the stack. *)

type t

val of_int : int -> t
(** @raise Invalid_argument on negatives. *)

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
