lib/mem/host_memory.mli: Pid
