lib/mem/host_memory.ml: Array Frame_allocator Hashtbl Page_table Pid
