lib/mem/frame_allocator.ml: Bytes
