lib/mem/pid.mli: Format
