lib/mem/utlb_mem.ml: Addr Frame_allocator Host_memory Page_table Pid
