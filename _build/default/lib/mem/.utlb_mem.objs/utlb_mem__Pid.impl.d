lib/mem/pid.ml: Format Int
