type t = int

let of_int n =
  if n < 0 then invalid_arg "Pid.of_int: negative pid";
  n

let to_int t = t

let equal = Int.equal

let compare = Int.compare

let hash t = t

let pp ppf t = Format.fprintf ppf "pid%d" t
