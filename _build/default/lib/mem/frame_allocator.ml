type t = {
  total : int;
  mutable free_list : int list;
  allocated : Bytes.t; (* one byte per frame: 1 = allocated *)
  mutable free_count : int;
}

let garbage = 0

let create ~frames =
  if frames < 2 then invalid_arg "Frame_allocator.create: need >= 2 frames";
  let allocated = Bytes.make frames '\000' in
  Bytes.set allocated garbage '\001';
  let rec build i acc = if i < 1 then acc else build (i - 1) (i :: acc) in
  { total = frames; free_list = build (frames - 1) []; allocated;
    free_count = frames - 1 }

let garbage_frame _ = garbage

let total t = t.total

let free_count t = t.free_count

let in_use t = t.total - t.free_count

let alloc t =
  match t.free_list with
  | [] -> None
  | f :: rest ->
    t.free_list <- rest;
    t.free_count <- t.free_count - 1;
    Bytes.set t.allocated f '\001';
    Some f

let free t f =
  if f = garbage then invalid_arg "Frame_allocator.free: garbage frame";
  if f < 0 || f >= t.total then
    invalid_arg "Frame_allocator.free: frame out of range";
  if Bytes.get t.allocated f = '\000' then
    invalid_arg "Frame_allocator.free: double free";
  Bytes.set t.allocated f '\000';
  t.free_list <- f :: t.free_list;
  t.free_count <- t.free_count + 1

let is_allocated t f =
  f >= 0 && f < t.total && Bytes.get t.allocated f = '\001'
