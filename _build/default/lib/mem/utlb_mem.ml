(** Simulated host memory subsystem: addresses, per-process page tables,
    a physical frame allocator, and the OS pin/unpin facility that the
    UTLB device driver depends on. *)

module Addr = Addr
module Pid = Pid
module Page_table = Page_table
module Frame_allocator = Frame_allocator
module Host_memory = Host_memory
