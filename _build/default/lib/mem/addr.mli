(** Addresses and pages.

    The whole system uses the paper's 4 KB page size. Virtual addresses
    are process-local; physical addresses name host DRAM. Both are plain
    integers wrapped in abstract types so they cannot be mixed up. *)

val page_size : int
(** 4096 bytes. *)

val page_shift : int
(** 12. *)

module Vaddr : sig
  type t

  val of_int : int -> t
  (** @raise Invalid_argument on negatives. *)

  val to_int : t -> int

  val page : t -> int
  (** Virtual page number. *)

  val offset : t -> int
  (** Offset within the page. *)

  val of_page : ?offset:int -> int -> t
  (** [of_page ~offset vpn] builds an address inside page [vpn].
      @raise Invalid_argument if [offset] is outside [0, page_size). *)

  val add : t -> int -> t

  val compare : t -> t -> int

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end

module Paddr : sig
  type t

  val of_int : int -> t
  (** @raise Invalid_argument on negatives. *)

  val to_int : t -> int

  val frame : t -> int
  (** Physical frame number. *)

  val of_frame : ?offset:int -> int -> t

  val compare : t -> t -> int

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end

val pages_spanned : Vaddr.t -> bytes:int -> int
(** Number of distinct virtual pages covered by a buffer of [bytes]
    bytes starting at the given address. Zero-length buffers span zero
    pages.
    @raise Invalid_argument on negative [bytes]. *)
