let page_shift = 12

let page_size = 1 lsl page_shift

module Vaddr = struct
  type t = int

  let of_int n =
    if n < 0 then invalid_arg "Vaddr.of_int: negative address";
    n

  let to_int t = t

  let page t = t lsr page_shift

  let offset t = t land (page_size - 1)

  let of_page ?(offset = 0) vpn =
    if vpn < 0 then invalid_arg "Vaddr.of_page: negative page";
    if offset < 0 || offset >= page_size then
      invalid_arg "Vaddr.of_page: offset outside page";
    (vpn lsl page_shift) lor offset

  let add t n = of_int (t + n)

  let compare = Int.compare

  let equal = Int.equal

  let pp ppf t = Format.fprintf ppf "v:0x%x" t
end

module Paddr = struct
  type t = int

  let of_int n =
    if n < 0 then invalid_arg "Paddr.of_int: negative address";
    n

  let to_int t = t

  let frame t = t lsr page_shift

  let of_frame ?(offset = 0) pfn =
    if pfn < 0 then invalid_arg "Paddr.of_frame: negative frame";
    if offset < 0 || offset >= page_size then
      invalid_arg "Paddr.of_frame: offset outside page";
    (pfn lsl page_shift) lor offset

  let compare = Int.compare

  let equal = Int.equal

  let pp ppf t = Format.fprintf ppf "p:0x%x" t
end

let pages_spanned va ~bytes =
  if bytes < 0 then invalid_arg "Addr.pages_spanned: negative length";
  if bytes = 0 then 0
  else
    let first = Vaddr.page va in
    let last = Vaddr.page (Vaddr.add va (bytes - 1)) in
    last - first + 1
