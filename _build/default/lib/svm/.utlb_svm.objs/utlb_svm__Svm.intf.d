lib/svm/svm.mli: Utlb_vmmc
