lib/svm/svm.ml: Array Bytes Hashtbl Int64 List Option Utlb_mem Utlb_vmmc
