(** Network-interface device model: SRAM, I/O bus, DMA engine, interrupt
    line, per-process command rings, and the MCP firmware loop. *)

module Sram = Sram
module Io_bus = Io_bus
module Dma = Dma
module Interrupt = Interrupt
module Command_queue = Command_queue
module Mcp = Mcp
module Nic = Nic
