module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine

type handler = pid:Utlb_mem.Pid.t -> Command_queue.command -> unit

type t = {
  engine : Engine.t;
  poll_cost : Time.t;
  mutable rings : Command_queue.t array;
  mutable rotor : int; (* round-robin position *)
  mutable handler : handler option;
  mutable scheduled : bool;
  mutable commands : int;
}

let create ?(poll_us = 0.3) engine =
  {
    engine;
    poll_cost = Time.of_us poll_us;
    rings = [||];
    rotor = 0;
    handler = None;
    scheduled = false;
    commands = 0;
  }

let attach t ring =
  let pid = Command_queue.pid ring in
  Array.iter
    (fun r ->
      if Utlb_mem.Pid.equal (Command_queue.pid r) pid then
        invalid_arg "Mcp.attach: ring already attached for pid")
    t.rings;
  t.rings <- Array.append t.rings [| ring |]

let set_handler t h = t.handler <- Some h

(* One polling pass: scan rings starting at the rotor; dispatch the
   first pending command, then reschedule if any work may remain. *)
let rec pass t () =
  t.scheduled <- false;
  let n = Array.length t.rings in
  if n > 0 then begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let ring = t.rings.((t.rotor + !i) mod n) in
      (match Command_queue.poll ring with
      | Some cmd -> found := Some (Command_queue.pid ring, cmd)
      | None -> ());
      incr i
    done;
    match !found with
    | None -> ()
    | Some (pid, cmd) ->
      t.rotor <- (t.rotor + !i) mod n;
      t.commands <- t.commands + 1;
      (* Charge firmware occupancy, then run the handler and continue
         polling in the same simulated activation. *)
      t.scheduled <- true;
      ignore
        (Engine.schedule t.engine ~delay:t.poll_cost (fun () ->
             t.scheduled <- false;
             (match t.handler with
             | Some h -> h ~pid cmd
             | None -> failwith "Mcp: command arrived with no handler");
             kick t))
  end

and kick t =
  if not t.scheduled then begin
    t.scheduled <- true;
    ignore (Engine.schedule t.engine ~delay:Time.zero (pass t))
  end

let commands_processed t = t.commands

let busy t = t.scheduled
