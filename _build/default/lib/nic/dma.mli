(** The NI DMA engine.

    Two operation classes, matching the two ways the paper's firmware
    uses DMA:

    - {!fetch_entries}: pull [n] consecutive translation entries from a
      host-resident UTLB page table into the NI (the Shared UTLB-Cache
      miss/prefetch path, Table 2 costs);
    - {!host_to_nic} / {!nic_to_host}: bulk data movement between pinned
      host pages and SRAM staging buffers (the actual message payload
      path).

    Completions are delivered through the event engine; the DMA engine
    shares the I/O bus, so overlapping transfers serialise. *)

type t

val create : Io_bus.t -> t

val bus : t -> Io_bus.t

val fetch_entries :
  t -> count:int -> on_done:(int64 array -> unit) -> read:(int -> int64) -> unit
(** [fetch_entries t ~count ~on_done ~read] reads entries
    [read 0 .. read (count-1)] from host memory with one bus
    transaction, then delivers them. The [read] functions run at
    completion time, modelling the host-memory snapshot the DMA sees. *)

val host_to_nic :
  t -> src:(unit -> bytes) -> len:int -> on_done:(bytes -> unit) -> unit
(** Bulk DMA of [len] bytes from host memory into the NI. [src] is
    sampled at completion. @raise Invalid_argument if [len < 0] or the
    sampled buffer length mismatches [len]. *)

val nic_to_host :
  t -> data:bytes -> on_done:(bytes -> unit) -> unit
(** Bulk DMA of a staged SRAM buffer out to host memory. *)

val entry_transfers : t -> int

val data_transfers : t -> int

val bytes_moved : t -> int
