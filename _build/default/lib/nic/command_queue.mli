(** Per-process command post rings.

    The VMMC driver allocates a command buffer in NI SRAM for each
    process and maps it into the process's address space; the user
    library posts requests there and the MCP firmware polls the rings
    round-robin (Section 4.2). The command-buffer identity doubles as
    the process identity — exactly the protection scheme of the paper.

    Commands are small fixed records; payload data never travels through
    the ring. *)

type command =
  | Send of { lvaddr : int; nbytes : int; dest_node : int; dest_import : int }
      (** Remote store from a local buffer into an imported buffer. *)
  | Fetch of { lvaddr : int; nbytes : int; src_node : int; src_import : int }
      (** Remote fetch from an imported buffer into a local buffer. *)
  | Redirect of { import_id : int; new_vaddr : int }
      (** Transfer-redirection: point an expected incoming transfer at a
          different user buffer. *)
  | Noop  (** Firmware liveness ping, used by tests. *)

type t

val create : Sram.t -> pid:Utlb_mem.Pid.t -> slots:int -> t
(** Carve a ring of [slots] command slots for [pid] out of SRAM.
    @raise Invalid_argument if [slots <= 0] or SRAM is exhausted. *)

val pid : t -> Utlb_mem.Pid.t

val capacity : t -> int

val post : t -> command -> bool
(** Enqueue a command; [false] when the ring is full (the user library
    must back off and retry — there is no blocking in user space). *)

val poll : t -> command option
(** Firmware side: dequeue the oldest command. *)

val pending : t -> int

val posted_total : t -> int
