(** Network-interface static RAM.

    Models the Myrinet LANai's on-board SRAM (1 MB on the paper's
    LANai 4.2 boards). Firmware structures — command rings, the Shared
    UTLB-Cache, the per-process UTLB page directories, staging buffers —
    are carved out of it with a named-region bump allocator, so the
    experiments can report exactly how much SRAM each design consumes
    (the motivation for moving translation tables to host DRAM). *)

type t

type region = private {
  name : string;
  offset : int;  (** Byte offset of the region within SRAM. *)
  length : int;  (** Region size in bytes. *)
}

val create : ?bytes:int -> unit -> t
(** [create ~bytes ()] — default 1 MB.
    @raise Invalid_argument if [bytes <= 0]. *)

val capacity : t -> int

val allocated : t -> int
(** Total bytes handed out to regions. *)

val available : t -> int

val alloc : t -> name:string -> length:int -> region
(** Reserve [length] bytes.
    @raise Invalid_argument if [length <= 0], the name is already used,
    or SRAM is exhausted (the paper's per-process UTLB hits exactly this
    wall). *)

val region : t -> string -> region option

val regions : t -> region list
(** All regions in allocation order. *)

(** Word access within a region (words are 8 bytes here; the LANai was a
    32-bit part but 64-bit words let us store a tagged translation entry
    in one word). Offsets are in words from the start of the region. *)

val read_word : t -> region -> int -> int64
(** @raise Invalid_argument if out of the region's bounds. *)

val write_word : t -> region -> int -> int64 -> unit

val read_bytes : t -> region -> off:int -> len:int -> bytes

val write_bytes : t -> region -> off:int -> bytes -> unit
