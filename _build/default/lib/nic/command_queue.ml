type command =
  | Send of { lvaddr : int; nbytes : int; dest_node : int; dest_import : int }
  | Fetch of { lvaddr : int; nbytes : int; src_node : int; src_import : int }
  | Redirect of { import_id : int; new_vaddr : int }
  | Noop

(* Each slot is five 8-byte SRAM words: tag + four arguments. The ring
   indices live in the OCaml record, standing in for the LANai's ring
   registers. *)
let words_per_slot = 5

type t = {
  sram : Sram.t;
  region : Sram.region;
  pid : Utlb_mem.Pid.t;
  slots : int;
  mutable head : int; (* next slot firmware reads *)
  mutable tail : int; (* next slot user writes *)
  mutable pending : int;
  mutable posted_total : int;
}

let create sram ~pid ~slots =
  if slots <= 0 then invalid_arg "Command_queue.create: slots must be positive";
  let name = Printf.sprintf "cmdq-%d" (Utlb_mem.Pid.to_int pid) in
  let region = Sram.alloc sram ~name ~length:(slots * words_per_slot * 8) in
  { sram; region; pid; slots; head = 0; tail = 0; pending = 0; posted_total = 0 }

let pid t = t.pid

let capacity t = t.slots

let tag_of = function
  | Send _ -> 1L
  | Fetch _ -> 2L
  | Redirect _ -> 3L
  | Noop -> 4L

let args_of = function
  | Send { lvaddr; nbytes; dest_node; dest_import } ->
    [| lvaddr; nbytes; dest_node; dest_import |]
  | Fetch { lvaddr; nbytes; src_node; src_import } ->
    [| lvaddr; nbytes; src_node; src_import |]
  | Redirect { import_id; new_vaddr } -> [| import_id; new_vaddr; 0; 0 |]
  | Noop -> [| 0; 0; 0; 0 |]

let write_slot t slot cmd =
  let base = slot * words_per_slot in
  Sram.write_word t.sram t.region base (tag_of cmd);
  Array.iteri
    (fun i a -> Sram.write_word t.sram t.region (base + 1 + i) (Int64.of_int a))
    (args_of cmd)

let read_slot t slot =
  let base = slot * words_per_slot in
  let tag = Sram.read_word t.sram t.region base in
  let arg i = Int64.to_int (Sram.read_word t.sram t.region (base + 1 + i)) in
  match tag with
  | 1L ->
    Send
      { lvaddr = arg 0; nbytes = arg 1; dest_node = arg 2; dest_import = arg 3 }
  | 2L ->
    Fetch
      { lvaddr = arg 0; nbytes = arg 1; src_node = arg 2; src_import = arg 3 }
  | 3L -> Redirect { import_id = arg 0; new_vaddr = arg 1 }
  | 4L -> Noop
  | _ -> failwith "Command_queue: corrupt slot tag"

let post t cmd =
  if t.pending >= t.slots then false
  else begin
    write_slot t t.tail cmd;
    t.tail <- (t.tail + 1) mod t.slots;
    t.pending <- t.pending + 1;
    t.posted_total <- t.posted_total + 1;
    true
  end

let poll t =
  if t.pending = 0 then None
  else begin
    let cmd = read_slot t t.head in
    t.head <- (t.head + 1) mod t.slots;
    t.pending <- t.pending - 1;
    Some cmd
  end

let pending t = t.pending

let posted_total t = t.posted_total
