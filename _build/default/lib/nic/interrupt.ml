module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine

type t = {
  engine : Engine.t;
  dispatch : Time.t;
  mutable handler : (payload:int -> unit) option;
  mutable busy_until : Time.t;
  mutable raised : int;
}

let create ?(dispatch_us = 10.0) engine =
  {
    engine;
    dispatch = Time.of_us dispatch_us;
    handler = None;
    busy_until = Time.zero;
    raised = 0;
  }

let set_handler t h = t.handler <- Some h

let raise_irq t ~payload =
  match t.handler with
  | None -> failwith "Interrupt.raise_irq: no handler installed"
  | Some h ->
    t.raised <- t.raised + 1;
    let now = Engine.now t.engine in
    let start = Time.max now t.busy_until in
    let fire = Time.add start t.dispatch in
    t.busy_until <- fire;
    ignore (Engine.schedule_at t.engine ~at:fire (fun () -> h ~payload))

let raised t = t.raised

let dispatch_cost t = t.dispatch
