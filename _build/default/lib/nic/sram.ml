type region = { name : string; offset : int; length : int }

type t = {
  store : Bytes.t;
  mutable next : int;
  mutable regions : region list; (* reverse allocation order *)
}

let create ?(bytes = 1 lsl 20) () =
  if bytes <= 0 then invalid_arg "Sram.create: size must be positive";
  { store = Bytes.make bytes '\000'; next = 0; regions = [] }

let capacity t = Bytes.length t.store

let allocated t = t.next

let available t = capacity t - t.next

let region t name =
  List.find_opt (fun r -> String.equal r.name name) t.regions

let alloc t ~name ~length =
  if length <= 0 then invalid_arg "Sram.alloc: length must be positive";
  if region t name <> None then invalid_arg "Sram.alloc: duplicate region name";
  if t.next + length > capacity t then
    invalid_arg
      (Printf.sprintf "Sram.alloc: out of SRAM (%d requested, %d available)"
         length (available t));
  let r = { name; offset = t.next; length } in
  t.next <- t.next + length;
  t.regions <- r :: t.regions;
  r

let regions t = List.rev t.regions

let word_size = 8

let check_word r i =
  if i < 0 || ((i + 1) * word_size) > r.length then
    invalid_arg "Sram: word index out of region bounds"

let read_word t r i =
  check_word r i;
  Bytes.get_int64_le t.store (r.offset + (i * word_size))

let write_word t r i v =
  check_word r i;
  Bytes.set_int64_le t.store (r.offset + (i * word_size)) v

let check_range r off len =
  if off < 0 || len < 0 || off + len > r.length then
    invalid_arg "Sram: byte range out of region bounds"

let read_bytes t r ~off ~len =
  check_range r off len;
  Bytes.sub t.store (r.offset + off) len

let write_bytes t r ~off data =
  check_range r off (Bytes.length data);
  Bytes.blit data 0 t.store (r.offset + off) (Bytes.length data)
