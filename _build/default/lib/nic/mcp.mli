(** The Myrinet Control Program (MCP) firmware loop.

    The MCP polls every process's command ring round-robin and hands
    each command to a handler (the VMMC layer installs one). Polling an
    empty set of rings idles the firmware until [kick]ed — the model's
    stand-in for the LANai spinning on its doorbells without burning
    simulated events.

    Per-command firmware occupancy is charged before the handler runs,
    so back-to-back commands from different processes serialise on the
    single LANai core, as on the real board. *)

type t

type handler = pid:Utlb_mem.Pid.t -> Command_queue.command -> unit

val create :
  ?poll_us:float -> Utlb_sim.Engine.t -> t
(** [poll_us] is the firmware occupancy charged per command dispatch
    (default 0.3 µs, the paper's command-processing overhead scale). *)

val attach : t -> Command_queue.t -> unit
(** Add a process ring to the polling rotation.
    @raise Invalid_argument if a ring for that pid is already attached. *)

val set_handler : t -> handler -> unit

val kick : t -> unit
(** Wake the firmware: schedule a polling pass if one is not already
    pending. User libraries call this after posting (the doorbell). *)

val commands_processed : t -> int

val busy : t -> bool
