lib/nic/interrupt.mli: Utlb_sim
