lib/nic/sram.ml: Bytes List Printf String
