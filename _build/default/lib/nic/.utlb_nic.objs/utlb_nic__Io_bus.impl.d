lib/nic/io_bus.ml: Utlb_sim
