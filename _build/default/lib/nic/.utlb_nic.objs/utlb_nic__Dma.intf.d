lib/nic/dma.mli: Io_bus
