lib/nic/nic.ml: Command_queue Dma Interrupt Io_bus Mcp Sram Utlb_sim
