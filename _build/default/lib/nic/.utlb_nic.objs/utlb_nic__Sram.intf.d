lib/nic/sram.mli:
