lib/nic/mcp.mli: Command_queue Utlb_mem Utlb_sim
