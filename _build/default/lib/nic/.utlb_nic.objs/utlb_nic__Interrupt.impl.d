lib/nic/interrupt.ml: Utlb_sim
