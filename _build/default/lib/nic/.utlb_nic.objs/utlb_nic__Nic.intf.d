lib/nic/nic.mli: Command_queue Dma Interrupt Io_bus Mcp Sram Utlb_mem Utlb_sim
