lib/nic/dma.ml: Array Bytes Io_bus
