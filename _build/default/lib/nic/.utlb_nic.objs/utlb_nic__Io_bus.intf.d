lib/nic/io_bus.mli: Utlb_sim
