lib/nic/utlb_nic.ml: Command_queue Dma Interrupt Io_bus Mcp Nic Sram
