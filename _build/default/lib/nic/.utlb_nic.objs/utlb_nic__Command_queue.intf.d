lib/nic/command_queue.mli: Sram Utlb_mem
