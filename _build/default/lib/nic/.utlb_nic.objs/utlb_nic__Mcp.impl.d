lib/nic/mcp.ml: Array Command_queue Utlb_mem Utlb_sim
