lib/nic/command_queue.ml: Array Int64 Printf Sram Utlb_mem
