(** Sparse pin-status bit vector.

    The Hierarchical-UTLB user-level library "only needs a bit array to
    maintain the memory-pinning status of virtual pages" (Section 3.3).
    The vector is chunked and allocated lazily so a 4 GB address space
    with a few thousand pinned pages costs a few kilobytes.

    [all_set]/[first_clear] are the check operation of the paper's
    Table 1: scan a page range and report whether every page is pinned. *)

type t

val create : unit -> t

val set : t -> int -> unit
(** Mark page [vpn] pinned. @raise Invalid_argument on negative vpn. *)

val clear : t -> int -> unit

val test : t -> int -> bool

val all_set : t -> vpn:int -> count:int -> bool
(** True when every page of [vpn .. vpn+count-1] is set.
    @raise Invalid_argument if [count <= 0]. *)

val first_clear : t -> vpn:int -> count:int -> int option
(** Lowest unset page in the range, if any. *)

val clear_pages : t -> vpn:int -> count:int -> int list
(** All unset pages in the range, ascending. *)

val population : t -> int
(** Number of set bits. *)
