(** The Hierarchical-UTLB translation table (Section 3.3).

    A per-process two-level table indexed directly by virtual page
    number. The top-level directory lives in NI SRAM (one local memory
    reference on a Shared UTLB-Cache miss); second-level tables live in
    pinned host memory and are fetched over the I/O bus by DMA.

    Entries hold the physical frame of an explicitly pinned virtual
    page. Invalid entries hold the driver's garbage frame, so the NI can
    dereference any index without a validity check — at worst it moves
    data to or from the garbage page (Section 4.2).

    The module also implements the paper's extension for reclaiming
    second-level tables: a table can be swapped out to a disk block, in
    which case lookups report [`Table_swapped] and the caller must raise
    a host interrupt to swap it back in. *)

type t

val max_vpn : int
(** Largest virtual page number the two-level table covers. *)

type lookup = Frame of int | Garbage | Table_swapped of int
(** [Table_swapped block] carries the disk block number stored in the
    directory entry. *)

val create :
  ?sram:Utlb_nic.Sram.t -> garbage_frame:int -> pid:Utlb_mem.Pid.t -> unit -> t
(** When [sram] is given, the 1024-entry top-level directory is
    allocated in NI SRAM (region ["utlb-dir-<pid>"]). *)

val pid : t -> Utlb_mem.Pid.t

val garbage_frame : t -> int

val install : t -> vpn:int -> frame:int -> unit
(** Driver path: store a pinned page's frame.
    @raise Invalid_argument on out-of-range vpn or negative frame. *)

val invalidate : t -> vpn:int -> unit
(** Reset the entry to the garbage frame. *)

val lookup : t -> vpn:int -> lookup
(** NI path: directory reference plus second-level read. *)

val valid_entries : t -> int
(** Entries currently holding a real (non-garbage) frame. *)

val second_level_tables : t -> int
(** Resident second-level tables (4 KB each in the real system). *)

val swap_out : t -> dir_index:int -> disk_block:int -> bool
(** Move a second-level table out to "disk". Returns [false] when the
    directory slot has no resident table. Valid entries within it are
    preserved and restored by [swap_in]. *)

val swap_in : t -> dir_index:int -> bool
(** Bring a swapped table back. Returns [false] if not swapped. *)

val swapped_tables : t -> int

val iter_valid : t -> (int -> int -> unit) -> unit
(** [iter_valid t f] calls [f vpn frame] for every valid (non-garbage)
    entry in resident second-level tables, ascending vpn. *)
