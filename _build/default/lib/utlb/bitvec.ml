(* Chunks of 62 bits are stored in a hashtable keyed by chunk index.
   62 (not 63) keeps every mask positive on 63-bit native ints. *)
let bits_per_chunk = 62

type t = { chunks : (int, int) Hashtbl.t; mutable population : int }

let create () = { chunks = Hashtbl.create 256; population = 0 }

let check_vpn vpn = if vpn < 0 then invalid_arg "Bitvec: negative vpn"

let locate vpn = (vpn / bits_per_chunk, vpn mod bits_per_chunk)

let chunk t idx = Option.value ~default:0 (Hashtbl.find_opt t.chunks idx)

let test t vpn =
  check_vpn vpn;
  let idx, bit = locate vpn in
  chunk t idx land (1 lsl bit) <> 0

let set t vpn =
  check_vpn vpn;
  if not (test t vpn) then begin
    let idx, bit = locate vpn in
    Hashtbl.replace t.chunks idx (chunk t idx lor (1 lsl bit));
    t.population <- t.population + 1
  end

let clear t vpn =
  check_vpn vpn;
  if test t vpn then begin
    let idx, bit = locate vpn in
    let value = chunk t idx land lnot (1 lsl bit) in
    if value = 0 then Hashtbl.remove t.chunks idx
    else Hashtbl.replace t.chunks idx value;
    t.population <- t.population - 1
  end

let check_range count =
  if count <= 0 then invalid_arg "Bitvec: count must be positive"

let first_clear t ~vpn ~count =
  check_vpn vpn;
  check_range count;
  let rec scan i =
    if i = count then None
    else if test t (vpn + i) then scan (i + 1)
    else Some (vpn + i)
  in
  scan 0

let all_set t ~vpn ~count = first_clear t ~vpn ~count = None

let clear_pages t ~vpn ~count =
  check_vpn vpn;
  check_range count;
  let rec scan i acc =
    if i < 0 then acc
    else scan (i - 1) (if test t (vpn + i) then acc else (vpn + i) :: acc)
  in
  scan (count - 1) []

let population t = t.population
