(** User-level replacement policies for pinned pages (Section 3.4).

    "UTLB predefines five replacement policies for applications to
    choose: LRU, MRU, LFU, MFU, and RANDOM." The tracker maintains the
    set of pinned pages with per-page recency and frequency, and selects
    eviction victims according to the chosen policy.

    Victims involved in outstanding requests can be excluded with the
    [protect] predicate — the correctness requirement of Section 3.1
    (never unpin a page with an outstanding send). *)

type policy = Lru | Mru | Lfu | Mfu | Random

val policy_name : policy -> string

val policy_of_string : string -> policy option
(** Case-insensitive. *)

val all_policies : policy list

type t

val create : policy -> rng:Utlb_sim.Rng.t -> t

val policy : t -> policy

val insert : t -> int -> unit
(** Track a newly pinned page (counts as a use).
    @raise Invalid_argument if already tracked. *)

val touch : t -> int -> unit
(** Record a use. Unknown pages are ignored (they are not pinned). *)

val remove : t -> int -> unit
(** Stop tracking (page force-unpinned). No-op when absent. *)

val mem : t -> int -> bool

val size : t -> int

val select_victim : t -> ?protect:(int -> bool) -> unit -> int option
(** Choose a victim per the policy among unprotected pages and remove
    it from the tracker. [None] when every page is protected or the set
    is empty. *)
