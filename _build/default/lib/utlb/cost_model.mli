(** The paper's cost model (Sections 5 and 6.2).

    All constants come from the paper's micro-benchmarks on 300 MHz
    Pentium-II / LANai 4.2 hardware: Table 1 (host-side check, pin,
    unpin vs page count), Table 2 (NI DMA and miss costs vs entries
    prefetched, 0.8 µs hit), and the Section 6.2 figures (0.5 µs user
    check, 10 µs interrupt dispatch, 17/15 µs kernel pin/unpin with
    context switches factored out).

    The two lookup-cost equations reproduce Section 6.2 exactly:

    {v
    lookup_utlb = user_check_hit
                + user_pin_cost  * check_miss_rate
                + ni_check_hit
                + ni_miss_cost   * ni_miss_rate
                + user_unpin_cost * unpin_rate
    lookup_intr = ni_check
                + (intr_cost + kernel_pin_cost) * ni_miss_rate
                + kernel_unpin_cost * unpin_rate
    v} *)

type t

val default : t
(** The paper's constants. *)

val create :
  ?user_check_us:float ->
  ?ni_hit_us:float ->
  ?ni_direct_us:float ->
  ?intr_us:float ->
  ?kernel_pin_us:float ->
  ?kernel_unpin_us:float ->
  ?pin_table:Utlb_sim.Cost_table.t ->
  ?unpin_table:Utlb_sim.Cost_table.t ->
  ?ni_miss_table:Utlb_sim.Cost_table.t ->
  ?dma_table:Utlb_sim.Cost_table.t ->
  ?check_min_us:float ->
  ?check_max_table:Utlb_sim.Cost_table.t ->
  unit ->
  t

(** {2 Host-side costs (Table 1)} *)

val check_min_us : t -> pages:int -> float
(** Best-case bitmap check. *)

val check_max_us : t -> pages:int -> float
(** Worst-case bitmap check (depends on the first bit's position). *)

val pin_us : t -> pages:int -> float
(** One ioctl pinning [pages] contiguous pages.
    @raise Invalid_argument if [pages < 1]. *)

val unpin_us : t -> pages:int -> float

(** {2 NI-side costs (Table 2)} *)

val ni_hit_us : t -> float
(** Shared UTLB-Cache hit: 0.8 µs. *)

val ni_direct_us : t -> float
(** Direct per-process translation-table read in NI SRAM: 0.5 µs (the
    NI share of the paper's 0.9 µs fastest path). *)

val dma_us : t -> entries:int -> float
(** DMA portion of a miss fetching [entries] translations. *)

val ni_miss_us : t -> entries:int -> float
(** Total miss handling cost fetching [entries] translations. *)

(** {2 Section 6.2 constants} *)

val user_check_us : t -> float

val intr_us : t -> float

val kernel_pin_us : t -> float

val kernel_unpin_us : t -> float

(** {2 Lookup-cost equations (Table 6, Figure 8)} *)

type rates = {
  check_miss : float;  (** User-level check misses per lookup. *)
  ni_miss : float;  (** NI translation misses per lookup. *)
  unpin : float;  (** Pages unpinned per lookup. *)
  pin_pages : float;  (** Average pages pinned per check miss (>= 1). *)
}

val utlb_lookup_us : t -> prefetch:int -> rates -> float
(** Average UTLB translation lookup cost. [prefetch] sets the NI miss
    cost via Table 2; [rates.pin_pages] amortises multi-page pinning
    (Section 6.5): the pin term is
    [pin_us(pin_pages) / pin_pages * pages_pinned_per_lookup]. *)

val intr_lookup_us : t -> rates -> float
(** Average lookup cost of the interrupt-based baseline. *)
