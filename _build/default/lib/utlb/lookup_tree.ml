let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

let memory_references = 2

(* -1 marks an invalid entry; second-level tables allocate lazily. *)
type t = {
  directory : int array option array;
  mutable entries : int;
}

let create () = { directory = Array.make directory_entries None; entries = 0 }

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then invalid_arg "Lookup_tree: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

let find t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | None -> None
  | Some table -> if table.(idx) < 0 then None else Some table.(idx)

let set t vpn ~index =
  check_vpn vpn;
  if index < 0 then invalid_arg "Lookup_tree.set: negative index";
  let dir, idx = split vpn in
  let table =
    match t.directory.(dir) with
    | Some table -> table
    | None ->
      let table = Array.make table_entries (-1) in
      t.directory.(dir) <- Some table;
      table
  in
  if table.(idx) < 0 then t.entries <- t.entries + 1;
  table.(idx) <- index

let remove t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | None -> ()
  | Some table ->
    if table.(idx) >= 0 then begin
      table.(idx) <- -1;
      t.entries <- t.entries - 1
    end

let entries t = t.entries

let iter t f =
  Array.iteri
    (fun dir slot ->
      match slot with
      | None -> ()
      | Some table ->
        Array.iteri
          (fun idx v -> if v >= 0 then f ((dir lsl table_bits) lor idx) v)
          table)
    t.directory
