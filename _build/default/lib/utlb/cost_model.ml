module Cost_table = Utlb_sim.Cost_table

type t = {
  user_check_us : float;
  ni_hit_us : float;
  ni_direct_us : float;
  intr_us : float;
  kernel_pin_us : float;
  kernel_unpin_us : float;
  pin_table : Cost_table.t;
  unpin_table : Cost_table.t;
  ni_miss_table : Cost_table.t;
  dma_table : Cost_table.t;
  check_min_us : float;
  check_max_table : Cost_table.t;
}

(* Paper anchor points. *)
let paper_pin =
  [ (1, 27.0); (2, 30.0); (4, 36.0); (8, 47.0); (16, 70.0); (32, 115.0) ]

let paper_unpin =
  [ (1, 25.0); (2, 30.0); (4, 36.0); (8, 50.0); (16, 80.0); (32, 139.0) ]

let paper_ni_miss =
  [ (1, 1.8); (2, 1.9); (4, 1.9); (8, 2.3); (16, 2.8); (32, 3.2) ]

let paper_dma =
  [ (1, 1.5); (2, 1.6); (4, 1.6); (8, 1.9); (16, 2.1); (32, 2.5) ]

let paper_check_max =
  [ (1, 0.4); (2, 0.6); (4, 0.6); (8, 0.6); (16, 0.6); (32, 0.7) ]

let create ?(user_check_us = 0.5) ?(ni_hit_us = 0.8) ?(ni_direct_us = 0.5)
    ?(intr_us = 10.0)
    ?(kernel_pin_us = 17.0) ?(kernel_unpin_us = 15.0)
    ?(pin_table = Cost_table.create paper_pin)
    ?(unpin_table = Cost_table.create paper_unpin)
    ?(ni_miss_table = Cost_table.create paper_ni_miss)
    ?(dma_table = Cost_table.create paper_dma) ?(check_min_us = 0.2)
    ?(check_max_table = Cost_table.create paper_check_max) () =
  {
    user_check_us;
    ni_hit_us;
    ni_direct_us;
    intr_us;
    kernel_pin_us;
    kernel_unpin_us;
    pin_table;
    unpin_table;
    ni_miss_table;
    dma_table;
    check_min_us;
    check_max_table;
  }

let default = create ()

let check_pages pages =
  if pages < 1 then invalid_arg "Cost_model: pages must be >= 1"

let check_min_us t ~pages =
  check_pages pages;
  t.check_min_us

let check_max_us t ~pages =
  check_pages pages;
  Cost_table.eval t.check_max_table pages

let pin_us t ~pages =
  check_pages pages;
  Cost_table.eval t.pin_table pages

let unpin_us t ~pages =
  check_pages pages;
  Cost_table.eval t.unpin_table pages

let ni_hit_us t = t.ni_hit_us

let ni_direct_us t = t.ni_direct_us

let dma_us t ~entries =
  if entries < 1 then invalid_arg "Cost_model.dma_us: entries must be >= 1";
  Cost_table.eval t.dma_table entries

let ni_miss_us t ~entries =
  if entries < 1 then
    invalid_arg "Cost_model.ni_miss_us: entries must be >= 1";
  Cost_table.eval t.ni_miss_table entries

let user_check_us t = t.user_check_us

let intr_us t = t.intr_us

let kernel_pin_us t = t.kernel_pin_us

let kernel_unpin_us t = t.kernel_unpin_us

type rates = {
  check_miss : float;
  ni_miss : float;
  unpin : float;
  pin_pages : float;
}

let utlb_lookup_us t ~prefetch rates =
  let pin_pages = int_of_float (Float.max 1.0 (Float.round rates.pin_pages)) in
  t.user_check_us
  +. (pin_us t ~pages:pin_pages *. rates.check_miss)
  +. t.ni_hit_us
  +. (ni_miss_us t ~entries:prefetch *. rates.ni_miss)
  +. (unpin_us t ~pages:1 *. rates.unpin)

let intr_lookup_us t rates =
  t.ni_hit_us
  +. ((t.intr_us +. t.kernel_pin_us) *. rates.ni_miss)
  +. (t.kernel_unpin_us *. rates.unpin)
