module Sram = Utlb_nic.Sram
module Pid = Utlb_mem.Pid

let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

type lookup = Frame of int | Garbage | Table_swapped of int

type slot =
  | Empty
  | Resident of int array (* frame per entry; garbage frame = invalid *)
  | Swapped of { disk_block : int; saved : int array }

type t = {
  pid : Pid.t;
  garbage : int;
  directory : slot array;
  (* Mirror of the directory's presence bits in NI SRAM, when given. *)
  sram_dir : (Sram.t * Sram.region) option;
  mutable valid : int;
  mutable resident_tables : int;
  mutable swapped : int;
}

let create ?sram ~garbage_frame ~pid () =
  let sram_dir =
    match sram with
    | None -> None
    | Some sram ->
      let name = Printf.sprintf "utlb-dir-%d" (Pid.to_int pid) in
      Some (sram, Sram.alloc sram ~name ~length:(directory_entries * 8))
  in
  {
    pid;
    garbage = garbage_frame;
    directory = Array.make directory_entries Empty;
    sram_dir;
    valid = 0;
    resident_tables = 0;
    swapped = 0;
  }

let pid t = t.pid

let garbage_frame t = t.garbage

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then
    invalid_arg "Translation_table: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

(* Keep the SRAM copy of a directory word in sync: positive values are
   "host physical address" of the table (we store the index), negative
   values encode a disk block for swapped tables, zero is empty. *)
let sync_dir t dir =
  match t.sram_dir with
  | None -> ()
  | Some (sram, region) ->
    let word =
      match t.directory.(dir) with
      | Empty -> 0L
      | Resident _ -> Int64.of_int (dir + 1)
      | Swapped { disk_block; _ } -> Int64.of_int (-(disk_block + 1))
    in
    Sram.write_word sram region dir word

let table_for t dir =
  match t.directory.(dir) with
  | Resident table -> Some table
  | Empty ->
    let table = Array.make table_entries t.garbage in
    t.directory.(dir) <- Resident table;
    t.resident_tables <- t.resident_tables + 1;
    sync_dir t dir;
    Some table
  | Swapped _ -> None

let install t ~vpn ~frame =
  check_vpn vpn;
  if frame < 0 then invalid_arg "Translation_table.install: negative frame";
  let dir, idx = split vpn in
  match table_for t dir with
  | None -> invalid_arg "Translation_table.install: table is swapped out"
  | Some table ->
    if table.(idx) = t.garbage && frame <> t.garbage then
      t.valid <- t.valid + 1;
    if table.(idx) <> t.garbage && frame = t.garbage then
      t.valid <- t.valid - 1;
    table.(idx) <- frame

let invalidate t ~vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | Empty -> ()
  | Swapped _ -> invalid_arg "Translation_table.invalidate: table is swapped out"
  | Resident table ->
    if table.(idx) <> t.garbage then begin
      table.(idx) <- t.garbage;
      t.valid <- t.valid - 1
    end

let lookup t ~vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | Empty -> Garbage
  | Swapped { disk_block; _ } -> Table_swapped disk_block
  | Resident table ->
    if table.(idx) = t.garbage then Garbage else Frame table.(idx)

let valid_entries t = t.valid

let second_level_tables t = t.resident_tables

let swap_out t ~dir_index ~disk_block =
  if dir_index < 0 || dir_index >= directory_entries then
    invalid_arg "Translation_table.swap_out: index out of range";
  match t.directory.(dir_index) with
  | Empty | Swapped _ -> false
  | Resident table ->
    t.directory.(dir_index) <- Swapped { disk_block; saved = table };
    t.resident_tables <- t.resident_tables - 1;
    t.swapped <- t.swapped + 1;
    sync_dir t dir_index;
    true

let swap_in t ~dir_index =
  if dir_index < 0 || dir_index >= directory_entries then
    invalid_arg "Translation_table.swap_in: index out of range";
  match t.directory.(dir_index) with
  | Empty | Resident _ -> false
  | Swapped { saved; _ } ->
    t.directory.(dir_index) <- Resident saved;
    t.resident_tables <- t.resident_tables + 1;
    t.swapped <- t.swapped - 1;
    sync_dir t dir_index;
    true

let swapped_tables t = t.swapped

let iter_valid t f =
  Array.iteri
    (fun dir slot ->
      match slot with
      | Empty | Swapped _ -> ()
      | Resident table ->
        Array.iteri
          (fun idx frame ->
            if frame <> t.garbage then f ((dir lsl table_bits) lor idx) frame)
          table)
    t.directory
