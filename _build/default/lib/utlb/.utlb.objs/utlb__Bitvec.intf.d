lib/utlb/bitvec.mli:
