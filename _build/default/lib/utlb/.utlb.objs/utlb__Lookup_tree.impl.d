lib/utlb/lookup_tree.ml: Array
