lib/utlb/miss_classifier.mli: Utlb_mem
