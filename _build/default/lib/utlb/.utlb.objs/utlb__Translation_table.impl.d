lib/utlb/translation_table.ml: Array Int64 Printf Utlb_mem Utlb_nic
