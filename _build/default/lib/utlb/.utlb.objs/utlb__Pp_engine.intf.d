lib/utlb/pp_engine.mli: Replacement Report Utlb_mem
