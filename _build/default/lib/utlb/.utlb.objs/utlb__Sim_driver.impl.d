lib/utlb/sim_driver.ml: Hier_engine Intr_engine Ni_cache Option Pp_engine Utlb_trace
