lib/utlb/per_process.ml: Array Int64 List Lookup_tree Printf Replacement Utlb_mem Utlb_nic Utlb_sim
