lib/utlb/report.ml: Cost_model Float Format
