lib/utlb/replacement.ml: Array Hashtbl List String Utlb_sim
