lib/utlb/replacement.mli: Utlb_sim
