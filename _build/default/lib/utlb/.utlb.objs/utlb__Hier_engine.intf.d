lib/utlb/hier_engine.mli: Miss_classifier Ni_cache Replacement Report Translation_table Utlb_mem
