lib/utlb/cost_model.mli: Utlb_sim
