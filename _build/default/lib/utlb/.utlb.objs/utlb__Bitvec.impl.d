lib/utlb/bitvec.ml: Hashtbl Option
