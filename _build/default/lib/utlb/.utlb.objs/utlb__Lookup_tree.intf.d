lib/utlb/lookup_tree.mli:
