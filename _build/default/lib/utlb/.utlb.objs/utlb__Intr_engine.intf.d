lib/utlb/intr_engine.mli: Ni_cache Report Utlb_mem
