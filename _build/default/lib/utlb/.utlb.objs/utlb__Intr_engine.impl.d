lib/utlb/intr_engine.ml: Array Hashtbl Miss_classifier Ni_cache Replacement Report Utlb_mem Utlb_sim
