lib/utlb/per_process.mli: Replacement Utlb_mem Utlb_nic
