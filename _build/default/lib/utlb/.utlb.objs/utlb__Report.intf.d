lib/utlb/report.mli: Cost_model Format
