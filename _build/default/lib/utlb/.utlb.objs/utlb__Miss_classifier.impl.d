lib/utlb/miss_classifier.ml: Hashtbl Utlb_mem
