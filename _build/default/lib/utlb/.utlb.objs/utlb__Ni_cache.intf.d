lib/utlb/ni_cache.mli: Utlb_mem
