lib/utlb/translation_table.mli: Utlb_mem Utlb_nic
