lib/utlb/ni_cache.ml: Array List String Utlb_mem
