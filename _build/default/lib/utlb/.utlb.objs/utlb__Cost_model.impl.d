lib/utlb/cost_model.ml: Float Utlb_sim
