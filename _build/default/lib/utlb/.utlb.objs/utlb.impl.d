lib/utlb/utlb.ml: Bitvec Cost_model Hier_engine Intr_engine Lookup_tree Miss_classifier Ni_cache Per_process Pp_engine Replacement Report Sim_driver Translation_table
