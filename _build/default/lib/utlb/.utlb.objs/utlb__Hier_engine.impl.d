lib/utlb/hier_engine.ml: Array Bitvec Hashtbl List Logs Miss_classifier Ni_cache Replacement Report Translation_table Utlb_mem Utlb_sim
