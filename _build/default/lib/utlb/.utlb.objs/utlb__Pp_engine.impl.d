lib/utlb/pp_engine.ml: Hashtbl Per_process Replacement Report Utlb_mem Utlb_sim
