lib/utlb/sim_driver.mli: Hier_engine Intr_engine Pp_engine Report Utlb_trace
