module Rng = Utlb_sim.Rng
module Heap = Utlb_sim.Heap

type policy = Lru | Mru | Lfu | Mfu | Random

let policy_name = function
  | Lru -> "lru"
  | Mru -> "mru"
  | Lfu -> "lfu"
  | Mfu -> "mfu"
  | Random -> "random"

let all_policies = [ Lru; Mru; Lfu; Mfu; Random ]

let policy_of_string s =
  let lower = String.lowercase_ascii s in
  List.find_opt (fun p -> String.equal (policy_name p) lower) all_policies

type info = { mutable last_use : int; mutable uses : int }

(* Heap entries are (score, page) snapshots; stale snapshots (score no
   longer current, or page no longer tracked) are discarded lazily at
   pop time. This keeps insert/touch/select all O(log n). *)
type snapshot = { score : int * int; page : int }

type t = {
  policy : policy;
  rng : Rng.t;
  pages : (int, info) Hashtbl.t;
  heap : snapshot Heap.t;
  (* Random policy: dense array of pages with O(1) swap-remove. *)
  mutable dense : int array;
  mutable dense_len : int;
  slot : (int, int) Hashtbl.t;
  mutable tick : int;
}

let score policy info =
  match policy with
  | Lru -> (info.last_use, 0)
  | Mru -> (-info.last_use, 0)
  | Lfu -> (info.uses, info.last_use)
  | Mfu -> (-info.uses, info.last_use)
  | Random -> (0, 0)

let create policy ~rng =
  {
    policy;
    rng;
    pages = Hashtbl.create 1024;
    heap = Heap.create ~cmp:(fun a b -> compare (a.score, a.page) (b.score, b.page));
    dense = Array.make 16 0;
    dense_len = 0;
    slot = Hashtbl.create 1024;
    tick = 0;
  }

let policy t = t.policy

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let push_snapshot t page info =
  if t.policy <> Random then
    Heap.push t.heap { score = score t.policy info; page }

let dense_add t page =
  if t.dense_len = Array.length t.dense then begin
    let bigger = Array.make (2 * t.dense_len) 0 in
    Array.blit t.dense 0 bigger 0 t.dense_len;
    t.dense <- bigger
  end;
  t.dense.(t.dense_len) <- page;
  Hashtbl.replace t.slot page t.dense_len;
  t.dense_len <- t.dense_len + 1

let dense_remove t page =
  match Hashtbl.find_opt t.slot page with
  | None -> ()
  | Some i ->
    let last = t.dense_len - 1 in
    let moved = t.dense.(last) in
    t.dense.(i) <- moved;
    Hashtbl.replace t.slot moved i;
    t.dense_len <- last;
    Hashtbl.remove t.slot page

let insert t page =
  if Hashtbl.mem t.pages page then
    invalid_arg "Replacement.insert: page already tracked";
  let info = { last_use = next_tick t; uses = 1 } in
  Hashtbl.replace t.pages page info;
  if t.policy = Random then dense_add t page else push_snapshot t page info

let touch t page =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some info ->
    info.last_use <- next_tick t;
    info.uses <- info.uses + 1;
    push_snapshot t page info

let remove t page =
  if Hashtbl.mem t.pages page then begin
    Hashtbl.remove t.pages page;
    if t.policy = Random then dense_remove t page
  end

let mem t page = Hashtbl.mem t.pages page

let size t = Hashtbl.length t.pages

let select_random t protect =
  (* Rejection-sample protected pages; fall back to a full scan when the
     sample keeps hitting protected entries (tiny unprotected sets). *)
  if t.dense_len = 0 then None
  else begin
    let attempts = 8 in
    let rec sample k =
      if k = 0 then
        (* Deterministic fallback: first unprotected page in the dense
           array. *)
        let rec scan i =
          if i >= t.dense_len then None
          else if protect t.dense.(i) then scan (i + 1)
          else Some t.dense.(i)
        in
        scan 0
      else
        let candidate = t.dense.(Rng.int t.rng t.dense_len) in
        if protect candidate then sample (k - 1) else Some candidate
    in
    match sample attempts with
    | None -> None
    | Some page ->
      Hashtbl.remove t.pages page;
      dense_remove t page;
      Some page
  end

let select_scored t protect =
  (* Pop snapshots until a current, unprotected one appears. Protected
     current snapshots are set aside and pushed back afterwards. *)
  let stashed = ref [] in
  let rec pop () =
    match Heap.pop t.heap with
    | None -> None
    | Some snap ->
      (match Hashtbl.find_opt t.pages snap.page with
      | None -> pop () (* page no longer tracked *)
      | Some info ->
        if score t.policy info <> snap.score then pop () (* stale *)
        else if protect snap.page then begin
          stashed := snap :: !stashed;
          pop ()
        end
        else begin
          Hashtbl.remove t.pages snap.page;
          Some snap.page
        end)
  in
  let victim = pop () in
  List.iter (Heap.push t.heap) !stashed;
  victim

let select_victim t ?(protect = fun _ -> false) () =
  match t.policy with
  | Random -> select_random t protect
  | Lru | Mru | Lfu | Mfu -> select_scored t protect
