module Pid = Utlb_mem.Pid

type kind = Compulsory | Capacity | Conflict

let kind_name = function
  | Compulsory -> "compulsory"
  | Capacity -> "capacity"
  | Conflict -> "conflict"

(* Shadow fully-associative LRU cache: intrusive doubly-linked list with
   a sentinel, O(1) touch/insert/evict. *)
type node = {
  key : int * int;
  mutable prev : node;
  mutable next : node;
}

type t = {
  capacity : int;
  table : (int * int, node) Hashtbl.t;
  mutable sentinel : node;
  mutable size : int;
  seen : (int * int, unit) Hashtbl.t;
  mutable compulsory : int;
  mutable capacity_misses : int;
  mutable conflict : int;
}

let make_sentinel () =
  let rec s = { key = (-1, -1); prev = s; next = s } in
  s

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Miss_classifier.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    sentinel = make_sentinel ();
    size = 0;
    seen = Hashtbl.create 4096;
    compulsory = 0;
    capacity_misses = 0;
    conflict = 0;
  }

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let key ~pid ~vpn = (Pid.to_int pid, vpn)

let shadow_touch t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink node;
    push_front t node;
    true
  | None -> false

let shadow_insert t k =
  if not (Hashtbl.mem t.table k) then begin
    if t.size >= t.capacity then begin
      (* Evict the LRU tail. *)
      let tail = t.sentinel.prev in
      unlink tail;
      Hashtbl.remove t.table tail.key;
      t.size <- t.size - 1
    end;
    let rec node = { key = k; prev = node; next = node } in
    Hashtbl.replace t.table k node;
    push_front t node;
    t.size <- t.size + 1
  end

let note_hit t ~pid ~vpn =
  let k = key ~pid ~vpn in
  if not (shadow_touch t k) then shadow_insert t k;
  Hashtbl.replace t.seen k ()

let classify t ~pid ~vpn =
  let k = key ~pid ~vpn in
  let kind =
    if not (Hashtbl.mem t.seen k) then Compulsory
    else if Hashtbl.mem t.table k then Conflict
    else Capacity
  in
  Hashtbl.replace t.seen k ();
  if not (shadow_touch t k) then shadow_insert t k;
  (match kind with
  | Compulsory -> t.compulsory <- t.compulsory + 1
  | Capacity -> t.capacity_misses <- t.capacity_misses + 1
  | Conflict -> t.conflict <- t.conflict + 1);
  kind

let note_invalidate t ~pid ~vpn =
  let k = key ~pid ~vpn in
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink node;
    Hashtbl.remove t.table k;
    t.size <- t.size - 1

let compulsory t = t.compulsory

let capacity_misses t = t.capacity_misses

let conflict t = t.conflict
