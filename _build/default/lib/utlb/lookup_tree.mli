(** Two-level user-level lookup tree (per-process UTLB, Section 3.1).

    Maps a virtual page number to the index in the process's protected
    translation table where that page's physical address is stored. The
    structure is the classic 10/10 two-level page-table layout, so a
    lookup is exactly two memory references — the property the paper's
    fast-path cost depends on.

    An entry is either invalid or holds a translation-table index. *)

type t

val create : unit -> t

val max_vpn : int

val find : t -> int -> int option
(** Translation-table index for this page, if installed.
    @raise Invalid_argument on an out-of-range vpn. *)

val set : t -> int -> index:int -> unit
(** @raise Invalid_argument on a negative index. *)

val remove : t -> int -> unit
(** No-op when absent. *)

val entries : t -> int
(** Number of valid entries. *)

val memory_references : int
(** Cost of one lookup in memory references: 2. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f vpn index] for every valid entry, ascending. *)
