module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine

type pending = { payload : bytes; on_delivered : (unit -> unit) option }

type t = {
  demux : Demux.t;
  engine : Engine.t;
  src : int;
  dst : int;
  data_chan : int;
  ack_chan : int;
  window : int;
  timeout : Time.t;
  max_retries : int;
  (* Sender state *)
  in_flight : (int, pending) Hashtbl.t;
  backlog : pending Queue.t;
  mutable base : int; (* lowest unacked seq *)
  mutable next_seq : int;
  mutable timer : Engine.event_id option;
  mutable retries : int;
  mutable retransmissions : int;
  mutable sent : int;
  mutable failed : bool;
  (* Receiver state *)
  mutable expected : int;
  mutable receiver : (bytes -> unit) option;
  mutable delivered : int;
}

let src t = t.src

let dst t = t.dst

let set_receiver t f = t.receiver <- Some f

let fabric t = Demux.fabric t.demux

let stop_timer t =
  match t.timer with
  | Some id ->
    Engine.cancel t.engine id;
    t.timer <- None
  | None -> ()

let transmit_data t seq =
  match Hashtbl.find_opt t.in_flight seq with
  | None -> ()
  | Some p ->
    Fabric.send (fabric t) ~src:t.src ~dst:t.dst ~chan:t.data_chan ~seq
      ~kind:Packet.Data ~payload:p.payload

(* Go-back-N: on timer expiry, resend the whole window. *)
let rec on_timeout t () =
  t.timer <- None;
  if (not t.failed) && Hashtbl.length t.in_flight > 0 then begin
    t.retries <- t.retries + 1;
    if t.retries > t.max_retries then t.failed <- true
    else begin
      for seq = t.base to t.next_seq - 1 do
        if Hashtbl.mem t.in_flight seq then begin
          t.retransmissions <- t.retransmissions + 1;
          transmit_data t seq
        end
      done;
      start_timer t
    end
  end

and start_timer t =
  stop_timer t;
  t.timer <- Some (Engine.schedule t.engine ~delay:t.timeout (on_timeout t))

let rec pump t =
  (* Move backlog into the window while there is room. *)
  if
    (not t.failed)
    && Hashtbl.length t.in_flight < t.window
    && not (Queue.is_empty t.backlog)
  then begin
    let p = Queue.pop t.backlog in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.in_flight seq p;
    transmit_data t seq;
    if t.timer = None then start_timer t;
    pump t
  end

let handle_ack t upto =
  let progressed = ref false in
  for seq = t.base to upto do
    match Hashtbl.find_opt t.in_flight seq with
    | Some p ->
      Hashtbl.remove t.in_flight seq;
      progressed := true;
      (match p.on_delivered with Some f -> f () | None -> ())
    | None -> ()
  done;
  if upto >= t.base then t.base <- upto + 1;
  if !progressed then t.retries <- 0;
  if Hashtbl.length t.in_flight = 0 then stop_timer t else start_timer t;
  pump t

let handle_nack t at =
  (* Resend from the requested sequence number (go-back-N). *)
  if at >= t.base && not t.failed then begin
    for seq = at to t.next_seq - 1 do
      if Hashtbl.mem t.in_flight seq then begin
        t.retransmissions <- t.retransmissions + 1;
        transmit_data t seq
      end
    done;
    start_timer t
  end

let send_ack t =
  Fabric.send (fabric t) ~src:t.dst ~dst:t.src ~chan:t.ack_chan ~seq:0
    ~kind:(Packet.Ack (t.expected - 1)) ~payload:Bytes.empty

let send_nack t at =
  Fabric.send (fabric t) ~src:t.dst ~dst:t.src ~chan:t.ack_chan ~seq:0
    ~kind:(Packet.Nack at) ~payload:Bytes.empty

let on_data t (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Data ->
    if not (Packet.intact pkt) then send_nack t t.expected
    else if pkt.seq = t.expected then begin
      t.expected <- t.expected + 1;
      t.delivered <- t.delivered + 1;
      (match t.receiver with Some f -> f pkt.payload | None -> ());
      send_ack t
    end
    else if pkt.seq < t.expected then
      (* Duplicate of an already-delivered packet: re-ack so the sender
         can advance if our previous ack was lost. *)
      send_ack t
    else send_nack t t.expected
  | Packet.Ack _ | Packet.Nack _ -> ()

let on_ack_packet t (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Ack upto -> handle_ack t upto
  | Packet.Nack at -> handle_nack t at
  | Packet.Data -> ()

let create ?(window = 16) ?(timeout_us = 100.0) ?(max_retries = 30) ~demux
    ~src ~dst () =
  if window <= 0 then invalid_arg "Channel.create: window must be positive";
  let engine = Fabric.engine (Demux.fabric demux) in
  let data_chan = Demux.fresh_chan demux in
  let ack_chan = Demux.fresh_chan demux in
  let t =
    {
      demux;
      engine;
      src;
      dst;
      data_chan;
      ack_chan;
      window;
      timeout = Time.of_us timeout_us;
      max_retries;
      in_flight = Hashtbl.create 32;
      backlog = Queue.create ();
      base = 0;
      next_seq = 0;
      timer = None;
      retries = 0;
      retransmissions = 0;
      sent = 0;
      failed = false;
      expected = 0;
      receiver = None;
      delivered = 0;
    }
  in
  Demux.register demux ~node:dst ~chan:data_chan (on_data t);
  Demux.register demux ~node:src ~chan:ack_chan (on_ack_packet t);
  t

let send t ?on_delivered payload =
  t.sent <- t.sent + 1;
  Queue.push { payload = Bytes.copy payload; on_delivered } t.backlog;
  pump t

let in_flight t = Hashtbl.length t.in_flight

let sent t = t.sent

let delivered t = t.delivered

let retransmissions t = t.retransmissions

let failed t = t.failed
