(** Reliable, ordered, unidirectional channel between two NIs.

    Implements the VMMC-2 data-link retransmission protocol the paper
    lists as one of its extended features: go-back-N with cumulative
    acknowledgements, negative acknowledgements on sequence gaps or CRC
    failures, and a retransmission timer. Delivery to the receiver
    callback is exactly-once and in order even over a lossy fabric.

    A channel owns two tags from the demux: one for data (at the
    destination) and one for acks (back at the source). *)

type t

val create :
  ?window:int ->
  ?timeout_us:float ->
  ?max_retries:int ->
  demux:Demux.t ->
  src:int ->
  dst:int ->
  unit ->
  t
(** Defaults: window 16, timeout 100 µs, 30 retries before the channel
    declares the peer dead.
    @raise Invalid_argument on bad nodes or [window <= 0]. *)

val src : t -> int

val dst : t -> int

val set_receiver : t -> (bytes -> unit) -> unit
(** In-order delivery callback at the destination. *)

val send : t -> ?on_delivered:(unit -> unit) -> bytes -> unit
(** Queue a payload. [on_delivered] fires when the cumulative ack covers
    its sequence number. Sends beyond the window queue internally. *)

val in_flight : t -> int

val sent : t -> int
(** Distinct payloads accepted for sending. *)

val delivered : t -> int
(** Payloads handed to the receiver callback. *)

val retransmissions : t -> int

val failed : t -> bool
(** True once [max_retries] expirations passed without progress; the
    dynamic node-remapping procedure would kick in here in VMMC-2. *)
