(** Network packets.

    A Myrinet-style source-routed packet: the route is a list of switch
    output ports consumed hop by hop. The payload is opaque bytes — the
    VMMC layer serialises its own message format into it. A CRC covers
    the payload so the reliability layer can reject corrupted packets
    injected by the fault model. *)

type kind =
  | Data  (** Carries a payload; sequenced within a channel. *)
  | Ack of int  (** Cumulative acknowledgement up to (and incl.) seq. *)
  | Nack of int  (** Receiver saw a gap or bad CRC at seq. *)

type t = {
  src : int;  (** Source node id. *)
  dst : int;  (** Destination node id. *)
  chan : int;  (** Channel tag for demultiplexing at the receiver. *)
  seq : int;  (** Sequence number within the channel (Data only). *)
  kind : kind;
  route : int list;  (** Remaining switch output ports. *)
  payload : bytes;
  crc : int32;  (** CRC of the payload at send time. *)
}

val header_bytes : int
(** Fixed wire overhead per packet (route + header fields): 16. *)

val crc32 : bytes -> int32
(** CRC-32 (IEEE polynomial, bitwise implementation). *)

val make :
  src:int -> dst:int -> chan:int -> seq:int -> kind:kind -> route:int list ->
  payload:bytes -> t
(** Builds a packet with a correct CRC. *)

val wire_size : t -> int
(** Header plus payload bytes, used for serialisation delay. *)

val intact : t -> bool
(** Recompute the payload CRC and compare. *)

val corrupt : t -> t
(** Flip one payload bit (first byte); used by fault injection. On an
    empty payload, corrupts the stored CRC instead. *)

val pp : Format.formatter -> t -> unit
