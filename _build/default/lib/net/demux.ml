type t = {
  fabric : Fabric.t;
  routes : (int * int, Packet.t -> unit) Hashtbl.t; (* (node, chan) *)
  mutable next_chan : int;
  mutable unrouted : int;
}

let create fabric =
  let t =
    { fabric; routes = Hashtbl.create 32; next_chan = 0; unrouted = 0 }
  in
  for node = 0 to Fabric.nodes fabric - 1 do
    Fabric.attach fabric ~node (fun pkt ->
        match Hashtbl.find_opt t.routes (node, pkt.Packet.chan) with
        | Some h -> h pkt
        | None -> t.unrouted <- t.unrouted + 1)
  done;
  t

let fabric t = t.fabric

let fresh_chan t =
  let c = t.next_chan in
  t.next_chan <- c + 1;
  c

let register t ~node ~chan h =
  if Hashtbl.mem t.routes (node, chan) then
    invalid_arg "Demux.register: (node, chan) already registered";
  Hashtbl.replace t.routes (node, chan) h

let unrouted t = t.unrouted
