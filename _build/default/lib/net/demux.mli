(** Per-node packet demultiplexer.

    A node's NIC receives all packets addressed to it on one handler;
    the demux fans them out by channel tag so reliable channels and the
    VMMC message layer can coexist on one fabric. *)

type t

val create : Fabric.t -> t
(** Attaches itself as every node's receive handler. *)

val fabric : t -> Fabric.t

val fresh_chan : t -> int
(** Allocate a cluster-unique channel tag. *)

val register : t -> node:int -> chan:int -> (Packet.t -> unit) -> unit
(** Route packets with tag [chan] arriving at [node] to the handler.
    @raise Invalid_argument if that (node, chan) is already registered. *)

val unrouted : t -> int
(** Packets that arrived with no registered handler (dropped). *)
