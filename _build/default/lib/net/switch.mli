(** A source-routed crossbar switch.

    Packets carry their remaining route as a list of output ports; the
    switch pops the head, charges a fixed cut-through hop latency, and
    forwards on the corresponding output link. An exhausted route or an
    unknown port counts as a routing error and the packet is discarded
    (visible in the error counter — a healthy fabric never shows any). *)

type t

val create : ?hop_latency_us:float -> ports:int -> Utlb_sim.Engine.t -> t
(** Default hop latency 0.5 µs (8-port Myrinet class).
    @raise Invalid_argument if [ports <= 0]. *)

val ports : t -> int

val connect : t -> port:int -> Link.t -> unit
(** Attach the output link for [port].
    @raise Invalid_argument if out of range or already connected. *)

val ingress : t -> Packet.t -> unit
(** A packet arriving on any input port. *)

val forwarded : t -> int

val routing_errors : t -> int
