type kind = Data | Ack of int | Nack of int

type t = {
  src : int;
  dst : int;
  chan : int;
  seq : int;
  kind : kind;
  route : int list;
  payload : bytes;
  crc : int32;
}

let header_bytes = 16

(* CRC-32 (IEEE 802.3 polynomial), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 data =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  Bytes.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    data;
  Int32.logxor !c 0xFFFFFFFFl

let make ~src ~dst ~chan ~seq ~kind ~route ~payload =
  { src; dst; chan; seq; kind; route; payload; crc = crc32 payload }

let wire_size t = header_bytes + Bytes.length t.payload

let intact t = Int32.equal (crc32 t.payload) t.crc

let corrupt t =
  if Bytes.length t.payload = 0 then { t with crc = Int32.lognot t.crc }
  else begin
    let payload = Bytes.copy t.payload in
    Bytes.set payload 0 (Char.chr (Char.code (Bytes.get payload 0) lxor 0x01));
    { t with payload }
  end

let pp ppf t =
  let kind =
    match t.kind with
    | Data -> Printf.sprintf "data#%d" t.seq
    | Ack n -> Printf.sprintf "ack<=%d" n
    | Nack n -> Printf.sprintf "nack@%d" n
  in
  Format.fprintf ppf "[%d->%d chan=%d %s %dB]" t.src t.dst t.chan kind
    (Bytes.length t.payload)
