(** Myrinet-class network substrate: source-routed packets, serialising
    links with fault injection, a crossbar switch, a star fabric, a
    per-node demultiplexer, and reliable go-back-N channels (the VMMC-2
    data-link retransmission protocol). *)

module Packet = Packet
module Link = Link
module Switch = Switch
module Fabric = Fabric
module Demux = Demux
module Channel = Channel
