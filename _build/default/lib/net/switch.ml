module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine

type t = {
  engine : Engine.t;
  hop_latency : Time.t;
  outputs : Link.t option array;
  mutable forwarded : int;
  mutable routing_errors : int;
}

let create ?(hop_latency_us = 0.5) ~ports engine =
  if ports <= 0 then invalid_arg "Switch.create: ports must be positive";
  {
    engine;
    hop_latency = Time.of_us hop_latency_us;
    outputs = Array.make ports None;
    forwarded = 0;
    routing_errors = 0;
  }

let ports t = Array.length t.outputs

let connect t ~port link =
  if port < 0 || port >= ports t then
    invalid_arg "Switch.connect: port out of range";
  match t.outputs.(port) with
  | Some _ -> invalid_arg "Switch.connect: port already connected"
  | None -> t.outputs.(port) <- Some link

let ingress t pkt =
  match pkt.Packet.route with
  | [] -> t.routing_errors <- t.routing_errors + 1
  | port :: rest ->
    if port < 0 || port >= ports t then
      t.routing_errors <- t.routing_errors + 1
    else begin
      match t.outputs.(port) with
      | None -> t.routing_errors <- t.routing_errors + 1
      | Some link ->
        t.forwarded <- t.forwarded + 1;
        let forwarded_pkt = { pkt with Packet.route = rest } in
        ignore
          (Engine.schedule t.engine ~delay:t.hop_latency (fun () ->
               Link.transmit link forwarded_pkt))
    end

let forwarded t = t.forwarded

let routing_errors t = t.routing_errors
