lib/net/link.ml: Packet Utlb_sim
