lib/net/channel.ml: Bytes Demux Fabric Hashtbl Packet Queue Utlb_sim
