lib/net/demux.mli: Fabric Packet
