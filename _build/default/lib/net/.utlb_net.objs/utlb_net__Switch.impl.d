lib/net/switch.ml: Array Link Packet Utlb_sim
