lib/net/utlb_net.ml: Channel Demux Fabric Link Packet Switch
