lib/net/fabric.mli: Link Packet Switch Utlb_sim
