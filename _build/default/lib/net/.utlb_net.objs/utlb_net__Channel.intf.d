lib/net/channel.mli: Demux
