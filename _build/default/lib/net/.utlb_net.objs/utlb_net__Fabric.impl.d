lib/net/fabric.ml: Array Link List Packet Switch Utlb_sim
