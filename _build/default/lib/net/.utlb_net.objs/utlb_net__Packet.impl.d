lib/net/packet.ml: Array Bytes Char Format Int32 Lazy Printf
