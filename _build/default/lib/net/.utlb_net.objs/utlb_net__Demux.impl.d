lib/net/demux.ml: Fabric Hashtbl Packet
