lib/net/switch.mli: Link Packet Utlb_sim
