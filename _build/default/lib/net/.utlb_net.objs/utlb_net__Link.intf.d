lib/net/link.mli: Packet Utlb_sim
