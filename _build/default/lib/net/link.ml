module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Rng = Utlb_sim.Rng

type fault_model = { drop_probability : float; corrupt_probability : float }

let no_faults = { drop_probability = 0.0; corrupt_probability = 0.0 }

type t = {
  engine : Engine.t;
  bandwidth : float; (* bytes per microsecond *)
  latency : Time.t;
  faults : fault_model;
  rng : Rng.t option;
  sink : Packet.t -> unit;
  mutable busy_until : Time.t;
  mutable transmitted : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable bytes_sent : int;
}

let create ?(bandwidth_mb_per_s = 160.0) ?(latency_us = 0.5)
    ?(faults = no_faults) ?rng ~sink engine =
  if
    (faults.drop_probability > 0.0 || faults.corrupt_probability > 0.0)
    && rng = None
  then invalid_arg "Link.create: fault model requires an rng";
  {
    engine;
    bandwidth = bandwidth_mb_per_s; (* MB/s = bytes/us *)
    latency = Time.of_us latency_us;
    faults;
    rng;
    sink;
    busy_until = Time.zero;
    transmitted = 0;
    delivered = 0;
    dropped = 0;
    corrupted = 0;
    bytes_sent = 0;
  }

let roll t p =
  match t.rng with
  | None -> false
  | Some rng -> p > 0.0 && Rng.float rng 1.0 < p

let transmit t pkt =
  t.transmitted <- t.transmitted + 1;
  t.bytes_sent <- t.bytes_sent + Packet.wire_size pkt;
  let serialisation =
    Time.of_us (float_of_int (Packet.wire_size pkt) /. t.bandwidth)
  in
  let now = Engine.now t.engine in
  let start = Time.max now t.busy_until in
  let sent = Time.add start serialisation in
  t.busy_until <- sent;
  let arrival = Time.add sent t.latency in
  if roll t t.faults.drop_probability then t.dropped <- t.dropped + 1
  else begin
    let pkt =
      if roll t t.faults.corrupt_probability then begin
        t.corrupted <- t.corrupted + 1;
        Packet.corrupt pkt
      end
      else pkt
    in
    ignore
      (Engine.schedule_at t.engine ~at:arrival (fun () ->
           t.delivered <- t.delivered + 1;
           t.sink pkt))
  end

let transmitted t = t.transmitted

let delivered t = t.delivered

let dropped t = t.dropped

let corrupted t = t.corrupted

let bytes_sent t = t.bytes_sent
