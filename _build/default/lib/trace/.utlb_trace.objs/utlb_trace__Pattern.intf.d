lib/trace/pattern.mli: Record Trace Utlb_sim
