lib/trace/pattern.ml: Array Interleave List Record Utlb_mem Utlb_sim
