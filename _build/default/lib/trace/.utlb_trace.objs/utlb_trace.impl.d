lib/trace/utlb_trace.ml: Analysis Interleave Pattern Record Trace Workloads
