lib/trace/record.ml: Float Format Int Printf String Utlb_mem
