lib/trace/interleave.ml: Array Record Trace Utlb_mem Utlb_sim
