lib/trace/trace.ml: Array Hashtbl In_channel List Option Printf Record String Utlb_mem
