lib/trace/analysis.ml: Array Format Hashtbl List Option Record Trace Utlb_mem
