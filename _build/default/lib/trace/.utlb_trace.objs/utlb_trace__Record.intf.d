lib/trace/record.mli: Format Utlb_mem
