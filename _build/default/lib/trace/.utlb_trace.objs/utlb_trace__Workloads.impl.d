lib/trace/workloads.ml: Array Int64 Interleave List Record String Trace Utlb_mem Utlb_sim
