lib/trace/trace.mli: Record Utlb_mem
