lib/trace/interleave.mli: Record Trace Utlb_mem Utlb_sim
