lib/trace/workloads.mli: Trace Utlb_mem
