lib/trace/analysis.mli: Format Trace
