(** Locality analysis of communication traces.

    The Shared UTLB-Cache results (Tables 4/8) are a function of the
    workloads' reuse-distance profile: a direct-mapped cache of [N]
    entries mostly hits accesses whose LRU stack distance is below [N].
    This module computes that profile — plus the per-process and
    buffer-size breakdowns — so a trace can be read the way a cache
    architect would read it.

    Distances are computed over (process, page) pairs, the unit the
    cache tags, with an O(n log n) Fenwick-tree sweep. *)

type histogram = {
  buckets : (int * int) array;
      (** [(upper_bound, count)] per power-of-two bucket, ascending;
          an access with stack distance [d] lands in the first bucket
          with [d < upper_bound]. *)
  cold : int;  (** First-ever accesses (infinite distance). *)
  total : int;  (** All page accesses. *)
}

val reuse_distances : Trace.t -> histogram
(** LRU stack distances of every page access in the trace. *)

val hit_ratio_at : histogram -> entries:int -> float
(** Fraction of accesses with stack distance < [entries] — an upper
    bound for the hit ratio of any [entries]-sized cache (the
    fully-associative LRU ratio). *)

type summary = {
  lookups : int;
  page_accesses : int;
  footprint : int;
  per_pid : (int * int * int) list;
      (** (pid, lookups, distinct pages), ascending pid. *)
  npages_histogram : (int * int) list;  (** (npages, lookup count). *)
  mean_npages : float;
}

val summarize : Trace.t -> summary

val pp_histogram : Format.formatter -> histogram -> unit

val pp_summary : Format.formatter -> summary -> unit
