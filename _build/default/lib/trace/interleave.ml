module Rng = Utlb_sim.Rng
module Pid = Utlb_mem.Pid

type event = { vpn : int; npages : int; op : Record.op }

let merge rng ~mirror_fraction ~mirror_npages ~protocol_pid streams =
  let arrays = Array.map Array.of_list streams in
  let position = Array.make (Array.length arrays) 0 in
  let remaining =
    ref (Array.fold_left (fun n a -> n + Array.length a) 0 arrays)
  in
  let out = ref [] in
  let time = ref 0.0 in
  while !remaining > 0 do
    (* Pick a stream index weighted by remaining records. *)
    let target = Rng.int rng !remaining in
    let rec locate i acc =
      let left = Array.length arrays.(i) - position.(i) in
      if target < acc + left then i else locate (i + 1) (acc + left)
    in
    let i = locate 0 0 in
    let e = arrays.(i).(position.(i)) in
    position.(i) <- position.(i) + 1;
    remaining := !remaining - 1;
    time := !time +. 8.0 +. Rng.float rng 8.0;
    out :=
      Record.make ~time_us:!time ~pid:(Pid.of_int i) ~vpn:e.vpn
        ~npages:e.npages ~op:e.op
      :: !out;
    if mirror_fraction > 0.0 && Rng.float rng 1.0 < mirror_fraction then begin
      let mvpn = e.vpn - (e.vpn mod mirror_npages) in
      out :=
        Record.make ~time_us:(!time +. 1.5) ~pid:protocol_pid ~vpn:mvpn
          ~npages:mirror_npages ~op:Record.Fetch
        :: !out
    end
  done;
  Trace.of_records (Array.of_list !out)
