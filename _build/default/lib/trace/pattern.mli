(** Composable synthetic access patterns.

    The seven calibrated generators in {!Workloads} are built for the
    paper's Table 3; this module exposes the underlying vocabulary so
    users can assemble {e custom} workloads — for sizing a Shared
    UTLB-Cache against their own application's locality, or for
    adversarial testing.

    A pattern denotes a sequence of accesses over a partition of
    [pages] virtual pages, expressed relative to a base the assembler
    supplies. Combinators compose sequentially ([concat], [repeat]) or
    by probabilistic interleaving ([mix]).

    [to_trace] instantiates a pattern for several SPMD processes (same
    virtual layout, bases congruent modulo 16384 — see {!Workloads})
    and interleaves them into a node trace ready for {!Utlb.Sim_driver}. *)

type access = { rel_page : int; npages : int; op : Record.op }

type t

val pages : t -> int
(** Partition size the pattern was declared over. *)

(** {2 Primitive patterns} *)

val sequential : ?npages:int -> ?op:Record.op -> pages:int -> unit -> t
(** One pass, page 0 to [pages-1], stepping by [npages] (default 1). *)

val strided : ?stride:int -> ?pairs:bool -> pages:int -> unit -> t
(** One pass in strided order (default stride 64, made coprime with
    [pages]); [pairs] emits a read/write pair per visit (FFT-style). *)

val cyclic : passes:int -> ?npages:int -> pages:int -> unit -> t
(** [passes] sequential sweeps (Water-style). *)

val hot_cold :
  hot_fraction:float -> hot_bias:float -> lookups:int -> pages:int -> t
(** [lookups] accesses; a [hot_fraction] slice of the partition receives
    [hot_bias] of them, the rest sweep the cold pages (Barnes-style).
    @raise Invalid_argument if fractions are outside (0, 1). *)

val uniform_random : ?npages:int -> lookups:int -> pages:int -> unit -> t
(** Adversarial: no locality at all. *)

(** {2 Combinators} *)

val concat : t list -> t
(** Run patterns back to back over the same partition (pages = max).
    @raise Invalid_argument on an empty list. *)

val repeat : int -> t -> t
(** [repeat n p]: [p] n times. @raise Invalid_argument if [n < 1]. *)

val mix : (float * t) list -> lookups:int -> t
(** Probabilistic interleave: each of the [lookups] draws picks a
    component pattern with the given weight and emits its next access
    (cycling when a component runs dry).
    @raise Invalid_argument on empty lists or non-positive weights. *)

(** {2 Instantiation} *)

val accesses : t -> Utlb_sim.Rng.t -> access list
(** The raw access stream of one process (relative pages). *)

val to_trace :
  ?processes:int ->
  ?mirror_fraction:float ->
  ?mirror_npages:int ->
  seed:int64 ->
  t ->
  Trace.t
(** Instantiate for [processes] (default 4) SPMD processes plus the
    protocol-mirror process, interleaved like {!Workloads} traces. *)
