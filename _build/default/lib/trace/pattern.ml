module Rng = Utlb_sim.Rng

type access = { rel_page : int; npages : int; op : Record.op }

type t = { pages : int; gen : Rng.t -> access list }

let pages t = t.pages

let acc ?(npages = 1) ?(op = Record.Send) rel_page = { rel_page; npages; op }

let check_pages pages =
  if pages <= 0 then invalid_arg "Pattern: pages must be positive"

let sequential ?(npages = 1) ?(op = Record.Send) ~pages () =
  check_pages pages;
  if npages < 1 then invalid_arg "Pattern.sequential: npages must be >= 1";
  {
    pages;
    gen =
      (fun _rng ->
        let rec go p acc_list =
          if p >= pages then List.rev acc_list
          else
            go (p + npages)
              (acc ~npages:(min npages (pages - p)) ~op p :: acc_list)
        in
        go 0 []);
  }

let rec coprime_from n candidate =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  if gcd candidate n = 1 then candidate else coprime_from n (candidate + 1)

let strided ?(stride = 64) ?(pairs = false) ~pages () =
  check_pages pages;
  let stride = coprime_from pages (max 1 stride) in
  {
    pages;
    gen =
      (fun rng ->
        let offset = Rng.int rng pages in
        let events = ref [] in
        for j = 0 to pages - 1 do
          let p = ((j * stride) + offset) mod pages in
          events := acc p :: !events;
          if pairs then events := acc ~op:Record.Fetch p :: !events
        done;
        List.rev !events);
  }

let cyclic ~passes ?(npages = 1) ~pages () =
  check_pages pages;
  if passes < 1 then invalid_arg "Pattern.cyclic: passes must be >= 1";
  let one = sequential ~npages ~pages () in
  {
    pages;
    gen =
      (fun rng ->
        List.concat (List.init passes (fun _ -> one.gen rng)));
  }

let hot_cold ~hot_fraction ~hot_bias ~lookups ~pages =
  check_pages pages;
  if hot_fraction <= 0.0 || hot_fraction >= 1.0 then
    invalid_arg "Pattern.hot_cold: hot_fraction must be in (0, 1)";
  if hot_bias <= 0.0 || hot_bias >= 1.0 then
    invalid_arg "Pattern.hot_cold: hot_bias must be in (0, 1)";
  {
    pages;
    gen =
      (fun rng ->
        let hot_count = max 1 (int_of_float (hot_fraction *. float_of_int pages)) in
        let hot_start = Rng.int rng (max 1 (pages - hot_count)) in
        let cold_pos = ref 0 in
        let events = ref [] in
        for _ = 1 to lookups do
          if Rng.float rng 1.0 < hot_bias then
            events := acc (hot_start + Rng.int rng hot_count) :: !events
          else begin
            let p = !cold_pos in
            cold_pos := (p + 1) mod pages;
            events := acc p :: !events
          end
        done;
        List.rev !events);
  }

let uniform_random ?(npages = 1) ~lookups ~pages () =
  check_pages pages;
  {
    pages;
    gen =
      (fun rng ->
        List.init lookups (fun _ ->
            let p = Rng.int rng pages in
            acc ~npages:(min npages (pages - p)) p));
  }

let concat parts =
  if parts = [] then invalid_arg "Pattern.concat: empty list";
  {
    pages = List.fold_left (fun m p -> max m p.pages) 0 parts;
    gen = (fun rng -> List.concat_map (fun p -> p.gen rng) parts);
  }

let repeat n p =
  if n < 1 then invalid_arg "Pattern.repeat: n must be >= 1";
  concat (List.init n (fun _ -> p))

let mix weighted ~lookups =
  if weighted = [] then invalid_arg "Pattern.mix: empty list";
  List.iter
    (fun (w, _) ->
      if w <= 0.0 then invalid_arg "Pattern.mix: weights must be positive")
    weighted;
  let total = List.fold_left (fun s (w, _) -> s +. w) 0.0 weighted in
  {
    pages = List.fold_left (fun m (_, p) -> max m p.pages) 0 weighted;
    gen =
      (fun rng ->
        (* Materialise each component as a cyclic cursor. *)
        let components =
          List.map
            (fun (w, p) ->
              let stream = Array.of_list (p.gen rng) in
              if Array.length stream = 0 then
                invalid_arg "Pattern.mix: component generated no accesses";
              (w, stream, ref 0))
            weighted
        in
        List.init lookups (fun _ ->
            let draw = Rng.float rng total in
            let rec pick acc_w = function
              | [] -> assert false
              | [ (_, stream, pos) ] -> (stream, pos)
              | (w, stream, pos) :: rest ->
                if draw < acc_w +. w then (stream, pos)
                else pick (acc_w +. w) rest
            in
            let stream, pos = pick 0.0 components in
            let a = stream.(!pos mod Array.length stream) in
            incr pos;
            a));
  }

let accesses t rng = t.gen rng

let to_trace ?(processes = 4) ?(mirror_fraction = 0.05) ?(mirror_npages = 2)
    ~seed t =
  let rng = Rng.create ~seed in
  let streams =
    Array.init processes (fun pid ->
        (* Same SPMD layout convention as the calibrated workloads:
           bases congruent modulo 16384 pages. *)
        let base = 65536 + (pid * 16384) in
        let child = Rng.split rng in
        List.map
          (fun a ->
            {
              Interleave.vpn = base + a.rel_page;
              npages = a.npages;
              op = a.op;
            })
          (t.gen child))
  in
  Interleave.merge rng ~mirror_fraction ~mirror_npages
    ~protocol_pid:(Utlb_mem.Pid.of_int processes)
    streams
