(** Merging per-process access streams into one node trace.

    Shared by {!Workloads} and {!Pattern}: streams are interleaved by
    drawing the next record from a process chosen with probability
    proportional to its remaining length (mirroring how the paper's
    timestamp-serialised SMP traces mix), and a protocol process
    mirrors a fraction of accesses at the same virtual pages. *)

type event = { vpn : int; npages : int; op : Record.op }

val merge :
  Utlb_sim.Rng.t ->
  mirror_fraction:float ->
  mirror_npages:int ->
  protocol_pid:Utlb_mem.Pid.t ->
  event list array ->
  Trace.t
(** Streams are indexed by pid (0..n-1). *)
