module Pid = Utlb_mem.Pid

type t = { records : Record.t array }

let of_records records =
  Array.sort Record.compare_time records;
  { records }

let records t = t.records

let length t = Array.length t.records

let merge traces =
  of_records (Array.concat (List.map (fun t -> Array.copy t.records) traces))

let iter t f = Array.iter f t.records

let fold_pages t f init =
  Array.fold_left
    (fun acc (r : Record.t) ->
      let acc = ref acc in
      for i = 0 to r.npages - 1 do
        acc := f !acc r.pid (r.vpn + i)
      done;
      !acc)
    init t.records

let footprint_pages t =
  let seen = Hashtbl.create 4096 in
  fold_pages t
    (fun n _pid vpn ->
      if Hashtbl.mem seen vpn then n
      else begin
        Hashtbl.replace seen vpn ();
        n + 1
      end)
    0

let per_pid_footprint t =
  let seen = Hashtbl.create 4096 in
  let counts = Hashtbl.create 8 in
  let () =
    fold_pages t
      (fun () pid vpn ->
        if not (Hashtbl.mem seen (pid, vpn)) then begin
          Hashtbl.replace seen (pid, vpn) ();
          let c = Option.value ~default:0 (Hashtbl.find_opt counts pid) in
          Hashtbl.replace counts pid (c + 1)
        end)
      ()
  in
  Hashtbl.fold (fun pid c acc -> (pid, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let pids t = List.map fst (per_pid_footprint t)

let total_pages_touched t =
  Array.fold_left (fun n (r : Record.t) -> n + r.npages) 0 t.records

let save t oc =
  Printf.fprintf oc "# utlb trace: %d records\n" (length t);
  Array.iter (fun r -> output_string oc (Record.to_string r ^ "\n")) t.records

let load ic =
  let rec read acc =
    match In_channel.input_line ic with
    | None -> Ok (of_records (Array.of_list (List.rev acc)))
    | Some line ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then read acc
      else
        (match Record.of_string line with
        | Ok r -> read (r :: acc)
        | Error _ as e ->
          (* Propagate the parse error with its line content. *)
          (match e with Error msg -> Error msg | Ok _ -> assert false))
  in
  read []
