module Pid = Utlb_mem.Pid

type histogram = {
  buckets : (int * int) array;
  cold : int;
  total : int;
}

(* Fenwick tree over access indices: position i carries 1 when it is
   the most recent access of some page. The number of distinct pages
   touched between two accesses of the same page is then a prefix-sum
   difference — the classic O(n log n) stack-distance sweep. *)
module Fenwick = struct
  type t = { tree : int array }

  let create n = { tree = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.tree do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of positions [0..i]. *)
  let prefix t i =
    let i = ref (i + 1) in
    let s = ref 0 in
    while !i > 0 do
      s := !s + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !s
end

let bucket_bounds =
  (* Powers of two up to 1M distinct pages. *)
  Array.init 21 (fun i -> 1 lsl i)

let reuse_distances trace =
  let records = Trace.records trace in
  let total_accesses =
    Array.fold_left (fun n (r : Record.t) -> n + r.npages) 0 records
  in
  let fen = Fenwick.create total_accesses in
  let last : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let counts = Array.make (Array.length bucket_bounds) 0 in
  let cold = ref 0 in
  let index = ref 0 in
  Array.iter
    (fun (r : Record.t) ->
      let p = Pid.to_int r.Record.pid in
      for k = 0 to r.Record.npages - 1 do
        let key = (p, r.Record.vpn + k) in
        let i = !index in
        (match Hashtbl.find_opt last key with
        | None -> incr cold
        | Some j ->
          (* Distinct pages whose latest access lies strictly between
             j and i. *)
          let d = Fenwick.prefix fen (i - 1) - Fenwick.prefix fen j in
          let b = ref 0 in
          while
            !b < Array.length bucket_bounds - 1 && d >= bucket_bounds.(!b)
          do
            incr b
          done;
          counts.(!b) <- counts.(!b) + 1;
          Fenwick.add fen j (-1));
        Hashtbl.replace last key i;
        Fenwick.add fen i 1;
        incr index
      done)
    records;
  {
    buckets = Array.mapi (fun i c -> (bucket_bounds.(i), c)) counts;
    cold = !cold;
    total = total_accesses;
  }

let hit_ratio_at h ~entries =
  if h.total = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter
      (fun (bound, count) -> if bound <= entries then hits := !hits + count)
      h.buckets;
    float_of_int !hits /. float_of_int h.total
  end

type summary = {
  lookups : int;
  page_accesses : int;
  footprint : int;
  per_pid : (int * int * int) list;
  npages_histogram : (int * int) list;
  mean_npages : float;
}

let summarize trace =
  let lookups = Trace.length trace in
  let page_accesses = Trace.total_pages_touched trace in
  let pid_lookups = Hashtbl.create 8 in
  let npages_counts = Hashtbl.create 8 in
  Trace.iter trace (fun (r : Record.t) ->
      let p = Pid.to_int r.Record.pid in
      Hashtbl.replace pid_lookups p
        (1 + Option.value ~default:0 (Hashtbl.find_opt pid_lookups p));
      Hashtbl.replace npages_counts r.Record.npages
        (1 + Option.value ~default:0 (Hashtbl.find_opt npages_counts r.Record.npages)));
  let per_pid =
    Trace.per_pid_footprint trace
    |> List.map (fun (pid, pages) ->
           let p = Pid.to_int pid in
           (p, Option.value ~default:0 (Hashtbl.find_opt pid_lookups p), pages))
  in
  let npages_histogram =
    Hashtbl.fold (fun n c acc -> (n, c) :: acc) npages_counts []
    |> List.sort compare
  in
  {
    lookups;
    page_accesses;
    footprint = Trace.footprint_pages trace;
    per_pid;
    npages_histogram;
    mean_npages =
      (if lookups = 0 then 0.0
       else float_of_int page_accesses /. float_of_int lookups);
  }

let pp_histogram ppf h =
  Format.fprintf ppf "@[<v>reuse distances over %d page accesses:@," h.total;
  Format.fprintf ppf "  cold (first touch): %d (%.1f%%)@," h.cold
    (100.0 *. float_of_int h.cold /. float_of_int (max 1 h.total));
  Array.iter
    (fun (bound, count) ->
      if count > 0 then
        Format.fprintf ppf "  < %7d: %8d (%.1f%%)@," bound count
          (100.0 *. float_of_int count /. float_of_int (max 1 h.total)))
    h.buckets;
  Format.fprintf ppf "@]"

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>lookups %d, page accesses %d (mean %.2f pages/lookup), footprint \
     %d pages@,"
    s.lookups s.page_accesses s.mean_npages s.footprint;
  List.iter
    (fun (pid, lookups, pages) ->
      Format.fprintf ppf "  pid %d: %d lookups over %d pages@," pid lookups
        pages)
    s.per_pid;
  Format.fprintf ppf "  buffer sizes:";
  List.iter
    (fun (n, c) -> Format.fprintf ppf " %d-page x %d" n c)
    s.npages_histogram;
  Format.fprintf ppf "@]"
