(** Communication traces: record format, per-node trace container with
    Table-3 statistics and persistence, and calibrated synthetic
    generators for the seven SPLASH-2 workloads of the paper. *)

module Record = Record
module Trace = Trace
module Workloads = Workloads
module Analysis = Analysis
module Pattern = Pattern
module Interleave = Interleave
