(* Shared virtual memory over VMMC + UTLB.

   The paper's traces come from SPLASH-2 programs on a home-based SVM
   protocol; lib/svm rebuilds that substrate. This example runs a
   4-node, two-phase computation on a shared array:

   phase 1  every node fills its slice of the shared array
            (slices deliberately share boundary pages, so the
            multiple-writer diff merge is exercised);
   barrier  diffs flow to the pages' home nodes;
   phase 2  every node reads its neighbours' boundary values and
            verifies the merged contents.

   Underneath, every fault is a VMMC remote fetch and every diff a
   remote store — all translated by the UTLB on both ends with no
   interrupts.

   Run with: dune exec examples/svm_stencil.exe *)

module Cluster = Utlb_vmmc.Cluster
module Svm = Utlb_svm.Svm

let shared_pages = 16

let ints_per_page = Svm.page_size / 8

let total_ints = shared_pages * ints_per_page

let encode v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let decode b = Int64.to_int (Bytes.get_int64_le b 0)

let put h index v =
  let page = index / ints_per_page and off = index mod ints_per_page * 8 in
  Svm.write h ~page ~off (encode v)

let get h index =
  let page = index / ints_per_page and off = index mod ints_per_page * 8 in
  decode (Svm.read h ~page ~off ~len:8)

let () =
  let cluster = Cluster.create () in
  let svm = Svm.create cluster ~pages:shared_pages in
  let nodes = Cluster.node_count cluster in
  let handles = Array.init nodes (fun node -> Svm.handle svm ~node) in
  let slice = total_ints / nodes in

  Printf.printf
    "%d nodes, %d shared pages (%d ints), slice %d ints per node\n\n"
    nodes shared_pages total_ints slice;

  (* Phase 1: node n writes value (n+1) * 1000 + i into its slice.
     Slice boundaries fall inside pages, so adjacent nodes write
     different halves of the same page concurrently. *)
  Array.iteri
    (fun n h ->
      for i = n * slice to ((n + 1) * slice) - 1 do
        put h i (((n + 1) * 1000) + i)
      done)
    handles;
  Svm.barrier svm;
  Printf.printf "after phase 1: faults=%d diffs=%d diff_bytes=%d twins=%d\n"
    (Svm.faults svm) (Svm.diffs_sent svm) (Svm.diff_bytes svm)
    (Svm.twins_made svm);

  (* Phase 2: every node checks the whole array, including values merged
     from writers of the other halves of shared boundary pages. *)
  let errors = ref 0 in
  Array.iteri
    (fun _n h ->
      for i = 0 to total_ints - 1 do
        let owner = i / slice in
        let expected = ((owner + 1) * 1000) + i in
        if get h i <> expected then incr errors
      done)
    handles;
  Printf.printf "phase 2 verification: %d errors in %d reads\n" !errors
    (total_ints * nodes);

  (* The SVM traffic all flowed through the UTLB. *)
  let total_lookups = ref 0 and total_pinned = ref 0 in
  for node = 0 to nodes - 1 do
    let r = Cluster.utlb_report cluster ~node in
    total_lookups := !total_lookups + r.Utlb.Report.lookups;
    total_pinned := !total_pinned + r.Utlb.Report.pages_pinned
  done;
  Printf.printf
    "UTLB activity: %d translation lookups, %d pages pinned, 0 interrupts\n"
    !total_lookups !total_pinned;
  Printf.printf "simulated time: %.0f us\n" (Cluster.now_us cluster);
  if !errors = 0 then print_endline "RESULT: consistent — diff merge works"
  else print_endline "RESULT: INCONSISTENT"
