examples/svm_stencil.ml: Array Bytes Int64 Printf Utlb Utlb_svm Utlb_vmmc
