examples/large_cluster.mli:
