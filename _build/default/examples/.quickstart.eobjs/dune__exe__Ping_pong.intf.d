examples/ping_pong.mli:
