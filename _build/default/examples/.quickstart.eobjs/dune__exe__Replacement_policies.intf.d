examples/replacement_policies.mli:
