examples/replacement_policies.ml: Hier_engine List Printf Replacement Report Utlb Utlb_mem Utlb_sim
