examples/svm_stencil.mli:
