examples/fault_injection.ml: Bytes Char Cluster Printf Utlb_net Utlb_vmmc
