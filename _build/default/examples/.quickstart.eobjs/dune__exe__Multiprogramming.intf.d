examples/multiprogramming.mli:
