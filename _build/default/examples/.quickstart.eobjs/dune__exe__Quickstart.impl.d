examples/quickstart.ml: Bytes Cluster Cost_model Hier_engine Ni_cache Printf Report Sim_driver Utlb Utlb_mem Utlb_sim Utlb_trace Utlb_vmmc
