examples/ping_pong.ml: Bytes List Printf Utlb Utlb_msg Utlb_vmmc
