examples/zero_copy.ml: Bytes Char Cluster List Printf String Utlb Utlb_vmmc
