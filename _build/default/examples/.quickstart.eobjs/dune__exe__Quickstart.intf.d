examples/quickstart.mli:
