examples/multiprogramming.ml: Hier_engine List Ni_cache Printf Report Utlb Utlb_mem
