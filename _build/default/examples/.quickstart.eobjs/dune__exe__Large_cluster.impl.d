examples/large_cluster.ml: Array Bytes Int64 Printf Utlb Utlb_svm Utlb_vmmc
