(* Ping-pong over the tagged message layer.

   The classic latency/bandwidth microbenchmark, run end to end through
   the whole stack: Msg framing and credits -> VMMC remote stores ->
   NIC firmware + DMA -> fabric -> UTLB translation on both sides.
   Reports simulated half-round-trip latency and bandwidth per message
   size, warm (buffers pinned, NI caches filled by the warm-up round).

   Run with: dune exec examples/ping_pong.exe *)

module Cluster = Utlb_vmmc.Cluster
module Msg = Utlb_msg.Msg

let rounds = 8

let () =
  let cluster = Cluster.create () in
  let a = Msg.create cluster ~node:0 ~window:16 () in
  let b = Msg.create cluster ~node:1 ~window:16 () in
  Msg.connect a (Msg.address b);
  Msg.connect b (Msg.address a);

  let pingpong size =
    let payload = Bytes.create size in
    let start = Cluster.now_us cluster in
    for _ = 1 to rounds do
      Msg.send a ~dest:(Msg.address b) ~tag:1 payload;
      let _ = Msg.recv_blocking b ~tag:1 () in
      Msg.send b ~dest:(Msg.address a) ~tag:2 payload;
      let _ = Msg.recv_blocking a ~tag:2 () in
      ()
    done;
    let elapsed = Cluster.now_us cluster -. start in
    elapsed /. float_of_int (2 * rounds)
  in

  (* Warm-up: pin buffers and fill translation caches. *)
  ignore (pingpong 4096);

  Printf.printf "%-10s %14s %14s\n" "size" "latency (us)" "MB/s";
  List.iter
    (fun size ->
      let one_way = pingpong size in
      let mb_per_s = float_of_int size /. one_way in
      Printf.printf "%-10s %14.1f %14.1f\n"
        (if size >= 1024 then Printf.sprintf "%dKB" (size / 1024)
         else Printf.sprintf "%dB" size)
        one_way mb_per_s)
    [ 16; 256; 1024; 4000; 16000; 60000 ];

  Printf.printf
    "\n%d messages, %d fragments, %d credit stalls; 0 interrupts on both \
     nodes: %b\n"
    (Msg.messages_sent a + Msg.messages_sent b)
    (Msg.fragments_sent a + Msg.fragments_sent b)
    (Msg.credit_stalls a + Msg.credit_stalls b)
    ((Cluster.utlb_report cluster ~node:0).Utlb.Report.interrupts = 0
    && (Cluster.utlb_report cluster ~node:1).Utlb.Report.interrupts = 0)
