(* Scaling beyond the paper's 4-node testbed.

   Myrinet installations grew by cascading 8-port switches; the fabric
   model supports that as a chain topology. This example runs the SVM
   substrate on an 8-node cluster (4 switches x 2 hosts), so every page
   fault and diff crosses up to 4 switch hops — and the UTLB behaves
   identically, because nothing in the translation path depends on the
   topology.

   Run with: dune exec examples/large_cluster.exe *)

module Cluster = Utlb_vmmc.Cluster
module Svm = Utlb_svm.Svm

let () =
  let config =
    {
      Cluster.default_config with
      topology = Cluster.Chain { switches = 4; hosts_per_switch = 2 };
    }
  in
  let cluster = Cluster.create ~config () in
  let nodes = Cluster.node_count cluster in
  Printf.printf "chain cluster: %d nodes across 4 switches\n" nodes;

  let pages = 32 in
  let svm = Svm.create cluster ~pages in
  let handles = Array.init nodes (fun node -> Svm.handle svm ~node) in

  (* Every node stamps a counter into every page it does not home, then
     everyone verifies after a barrier. *)
  Array.iteri
    (fun n h ->
      for page = 0 to pages - 1 do
        if Svm.home_of svm ~page <> n then begin
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.of_int ((n * 1000) + page));
          Svm.write h ~page ~off:(n * 8) b
        end
      done)
    handles;
  Svm.barrier svm;

  let errors = ref 0 in
  Array.iter
    (fun h ->
      for page = 0 to pages - 1 do
        for n = 0 to nodes - 1 do
          if Svm.home_of svm ~page <> n then begin
            let b = Svm.read h ~page ~off:(n * 8) ~len:8 in
            if Int64.to_int (Bytes.get_int64_le b 0) <> (n * 1000) + page then
              incr errors
          end
        done
      done)
    handles;

  Printf.printf "verification: %d errors across %d cross-switch reads\n"
    !errors
    (nodes * pages * (nodes - 1));
  Printf.printf "faults=%d diffs=%d diff bytes=%d\n" (Svm.faults svm)
    (Svm.diffs_sent svm) (Svm.diff_bytes svm);
  let interrupts = ref 0 in
  for node = 0 to nodes - 1 do
    interrupts :=
      !interrupts + (Cluster.utlb_report cluster ~node).Utlb.Report.interrupts
  done;
  Printf.printf "UTLB interrupts across 8 nodes: %d\n" !interrupts;
  Printf.printf "simulated time: %.1f ms\n" (Cluster.now_us cluster /. 1000.0);
  if !errors = 0 then print_endline "RESULT: consistent across 4 switch hops"
