(* Application-specific replacement policies (Section 3.4).

   UTLB lets each application choose which pinned pages to give up when
   physical memory runs short: LRU, MRU, LFU, MFU or RANDOM. The right
   answer depends on the access pattern — this example demonstrates two
   classic cases under a tight pinned-page budget:

   - a looping sweep slightly larger than the budget, where LRU is
     pathological (every access evicts the page needed soonest) and MRU
     is optimal;
   - a skewed hot/cold pattern, where LFU keeps the hot set and MRU is
     poor.

   Run with: dune exec examples/replacement_policies.exe *)

open Utlb
module Pid = Utlb_mem.Pid
module Rng = Utlb_sim.Rng

let budget = 256

let run policy workload =
  let config =
    {
      Hier_engine.default_config with
      policy;
      memory_limit_pages = Some budget;
    }
  in
  let engine = Hier_engine.create ~seed:3L config in
  let pid = Pid.of_int 0 in
  workload (fun vpn -> ignore (Hier_engine.lookup engine ~pid ~vpn ~npages:1));
  Hier_engine.report engine ~label:(Replacement.policy_name policy)

(* Cyclic sweep over budget+32 pages: the textbook LRU-killer. *)
let looping_sweep touch =
  let pages = budget + 32 in
  for _round = 1 to 50 do
    for p = 0 to pages - 1 do
      touch (0x1000 + p)
    done
  done

(* 90% of touches on 64 hot pages, 10% on a 4096-page cold tail. *)
let hot_cold touch =
  let rng = Rng.create ~seed:17L in
  for _ = 1 to 40_000 do
    if Rng.float rng 1.0 < 0.9 then touch (0x1000 + Rng.int rng 64)
    else touch (0x10000 + Rng.int rng 4096)
  done

let show title workload =
  Printf.printf "\n%s (pinned-page budget %d)\n" title budget;
  Printf.printf "%-8s %14s %14s %14s\n" "policy" "check misses"
    "pages pinned" "pages unpinned";
  List.iter
    (fun policy ->
      let r = run policy workload in
      Printf.printf "%-8s %14d %14d %14d\n"
        (Replacement.policy_name policy)
        r.Report.check_misses r.Report.pages_pinned r.Report.pages_unpinned)
    Replacement.all_policies

let () =
  show "Looping sweep, 288 pages" looping_sweep;
  print_endline "-> MRU keeps most of the loop resident; LRU evicts exactly";
  print_endline "   the page that comes back soonest and repins constantly.";
  show "Hot/cold (64 hot pages, 4096-page cold tail)" hot_cold;
  print_endline "-> LFU/LRU protect the hot set; MRU keeps evicting it.";
  print_endline
    "\nThis is why UTLB exposes the policy to the application instead of";
  print_endline "hard-wiring one in the kernel or on the NI."
