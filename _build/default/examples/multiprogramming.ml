(* Multiprogramming and the Shared UTLB-Cache.

   Several processes on one node share the NI translation cache. SPMD
   processes lay out their buffers at identical virtual addresses, so
   without per-process index offsetting their entries collide in the
   direct-mapped cache on every access. This example measures the same
   workload under the four cache organisations of Table 8 and shows why
   the paper chose direct-mapped *with* offsetting.

   Run with: dune exec examples/multiprogramming.exe *)

open Utlb
module Pid = Utlb_mem.Pid

let processes = 4

let pages_per_process = 512

let rounds = 40

(* Identical SPMD layout: every process uses the same virtual range. *)
let buffer_base = 0x40000

let run_with assoc =
  let config =
    {
      Hier_engine.default_config with
      cache = { Ni_cache.entries = 4096; associativity = assoc };
    }
  in
  let engine = Hier_engine.create ~seed:11L config in
  (* Round-robin the processes the way timeslicing interleaves them. *)
  for _round = 1 to rounds do
    for p = 0 to processes - 1 do
      let pid = Pid.of_int p in
      for chunk = 0 to (pages_per_process / 8) - 1 do
        ignore
          (Hier_engine.lookup engine ~pid
             ~vpn:(buffer_base + (chunk * 8))
             ~npages:8)
      done
    done
  done;
  let r = Hier_engine.report engine ~label:(Ni_cache.associativity_name assoc) in
  let cache = Hier_engine.cache engine in
  (r, Ni_cache.probe_cost_entries cache, Ni_cache.hits cache + Ni_cache.misses cache)

let () =
  Printf.printf
    "%d processes, %d pages each at the SAME virtual addresses, %d rounds\n\n"
    processes pages_per_process rounds;
  Printf.printf "%-16s %12s %14s %18s\n" "cache" "NI miss rate"
    "page misses" "probes per lookup";
  List.iter
    (fun assoc ->
      let r, probes, lookups = run_with assoc in
      Printf.printf "%-16s %12.3f %14d %18.2f\n"
        (Ni_cache.associativity_name assoc)
        (Report.ni_miss_rate r) r.Report.ni_page_misses
        (float_of_int probes /. float_of_int (max 1 lookups)))
    [ Ni_cache.Direct_nohash; Ni_cache.Direct; Ni_cache.Two_way;
      Ni_cache.Four_way ];
  print_newline ();
  print_endline
    "direct-nohash thrashes: all four processes fight over the same lines.";
  print_endline
    "Offsetting separates them at no extra probe cost, which is why the";
  print_endline
    "paper picked direct-mapped-with-offset over set-associativity: the";
  print_endline
    "LANai firmware probes set entries sequentially, so 2-way/4-way pay";
  print_endline "more probes per lookup for roughly the same miss rate."
