(* Zero-copy file service with transfer-redirection and remote fetch.

   The scenario the paper's transfer-redirection feature enables
   (Section 4.1): a file server exports a staging buffer; clients store
   requests into it and fetch file blocks directly from the server's
   cache pages into their own user buffers — no intermediate copies on
   either side. The client-side destination pages are pinned on demand
   through the UTLB; redirection retargets an in-flight delivery to the
   consumer's actual buffer.

   Run with: dune exec examples/zero_copy.exe *)

open Utlb_vmmc

let block_size = 8192

let file_blocks = 24

(* The "file": deterministic content per block so clients can verify
   integrity end to end. *)
let block_content i =
  Bytes.init block_size (fun j -> Char.chr ((i * 31 + j * 7) land 0xff))

let () =
  let cluster = Cluster.create () in
  let server = Cluster.spawn cluster ~node:0 in
  let client_a = Cluster.spawn cluster ~node:1 in
  let client_b = Cluster.spawn cluster ~node:2 in

  (* Server loads the file into its page cache region and exports it. *)
  let cache_vaddr = 0x1000000 in
  for i = 0 to file_blocks - 1 do
    Cluster.Process.write_memory server
      ~vaddr:(cache_vaddr + (i * block_size))
      (block_content i)
  done;
  let file_export, file_key =
    Cluster.Process.export server ~vaddr:cache_vaddr
      ~len:(file_blocks * block_size)
  in

  (* Each client imports the file region and fetches blocks straight
     into its own buffers. *)
  let fetch_blocks client name blocks dest_vaddr =
    let handle =
      Cluster.Process.import client ~node:0 ~export_id:file_export
        ~key:file_key
    in
    let completed = ref 0 in
    List.iteri
      (fun slot block ->
        Cluster.Process.fetch client handle
          ~offset:(block * block_size)
          ~len:block_size
          ~lvaddr:(dest_vaddr + (slot * block_size))
          ~on_complete:(fun () -> incr completed))
      blocks;
    (name, client, blocks, dest_vaddr, completed)
  in
  let a = fetch_blocks client_a "client-a" [ 0; 3; 7; 11; 23 ] 0x300000 in
  let b = fetch_blocks client_b "client-b" [ 1; 2; 3; 5; 8; 13; 21 ] 0x500000 in
  Cluster.run cluster;

  let verify (name, client, blocks, dest_vaddr, completed) =
    let ok = ref true in
    List.iteri
      (fun slot block ->
        let got =
          Cluster.Process.read_memory client
            ~vaddr:(dest_vaddr + (slot * block_size))
            ~len:block_size
        in
        if not (Bytes.equal got (block_content block)) then ok := false)
      blocks;
    Printf.printf "%s: %d/%d blocks fetched, integrity %s\n" name !completed
      (List.length blocks)
      (if !ok then "OK" else "FAILED")
  in
  verify a;
  verify b;

  (* Redirection: client-a pre-posts a receive buffer for notifications,
     then redirects it to a fresh buffer between two server pushes — the
     second push lands at the new address without the server knowing. *)
  let notify_export, notify_key =
    Cluster.Process.export client_a ~vaddr:0x700000 ~len:4096
  in
  let to_a =
    Cluster.Process.import server ~node:1 ~export_id:notify_export
      ~key:notify_key
  in
  let push msg =
    Cluster.Process.write_memory server ~vaddr:0x2000000
      (Bytes.of_string msg);
    Cluster.Process.send server to_a ~lvaddr:0x2000000 ~offset:0
      ~len:(String.length msg)
  in
  push "block 7 invalidated";
  Cluster.run cluster;
  Cluster.Process.redirect client_a ~export_id:notify_export
    ~new_vaddr:0x900000;
  push "block 9 invalidated";
  Cluster.run cluster;
  let at_default =
    Cluster.Process.read_memory client_a ~vaddr:0x700000 ~len:19
  in
  let at_redirect =
    Cluster.Process.read_memory client_a ~vaddr:0x900000 ~len:19
  in
  Printf.printf "default buffer : %S\nredirected into: %S\n"
    (Bytes.to_string at_default)
    (Bytes.to_string at_redirect);

  (* The UTLB did all the address translation under the hood. *)
  let report = Cluster.utlb_report cluster ~node:0 in
  Printf.printf
    "server-node UTLB: %d lookups, %d pages pinned, %d NI misses \
     (0 interrupts by construction)\n"
    report.Utlb.Report.lookups report.Utlb.Report.pages_pinned
    report.Utlb.Report.ni_page_misses;
  Printf.printf "simulated time: %.1f us, garbage stores: %d\n"
    (Cluster.now_us cluster) (Cluster.garbage_stores cluster)
