open Utlb_sim

let us = Time.of_us

let test_time_conversions () =
  Alcotest.(check (float 1e-9)) "us roundtrip" 12.5 (Time.to_us (us 12.5));
  Alcotest.(check (float 1e-9)) "ms" 0.0125 (Time.to_ms (us 12.5));
  Alcotest.(check bool) "ordering" true Time.(us 1.0 < us 2.0);
  Alcotest.(check int64) "add" (us 3.0) (Time.add (us 1.0) (us 2.0));
  Alcotest.(check int64) "sub" (us 1.0) (Time.sub (us 3.0) (us 2.0))

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(us 3.0) (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:(us 1.0) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:(us 2.0) (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0
    (Time.to_us (Engine.now e))

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:(us 1.0) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_cascading () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule e ~delay:(us 1.0) (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Engine.schedule e ~delay:(us 1.0) (fun () ->
                fired := "inner" :: !fired))));
  Engine.run e;
  Alcotest.(check (list string)) "cascade" [ "outer"; "inner" ]
    (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Time.to_us (Engine.now e))

let test_zero_delay_runs_after_earlier () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:Time.zero (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule e ~delay:Time.zero (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "zero-delay chain" [ "a"; "b" ] (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:(us 1.0) (fun () -> fired := true) in
  Engine.cancel e id;
  (* double-cancel is a no-op *)
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "no pending" 0 (Engine.pending e)

let test_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(us 1.0) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:(us 5.0) (fun () -> log := 5 :: !log));
  Engine.run ~until:(us 2.0) e;
  Alcotest.(check (list int)) "only early events" [ 1 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.0
    (Time.to_us (Engine.now e));
  Engine.run e;
  Alcotest.(check (list int)) "rest fires" [ 1; 5 ] (List.rev !log)

let test_past_schedule_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:(us 5.0) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at e ~at:(us 1.0) (fun () -> ())))

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~delay:(Time.of_us (-1.0)) (fun () -> ())))

let test_step () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 3 do
    ignore (Engine.schedule e ~delay:(us 1.0) (fun () -> incr count))
  done;
  Alcotest.(check bool) "step fires one" true (Engine.step e);
  Alcotest.(check int) "one fired" 1 !count;
  Engine.run e;
  Alcotest.(check bool) "empty step" false (Engine.step e)

let suite =
  [
    Alcotest.test_case "time conversions" `Quick test_time_conversions;
    Alcotest.test_case "event ordering" `Quick test_event_order;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "cascading events" `Quick test_cascading;
    Alcotest.test_case "zero-delay chain" `Quick test_zero_delay_runs_after_earlier;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "past schedule rejected" `Quick test_past_schedule_rejected;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "single step" `Quick test_step;
  ]
