open Utlb
module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory

let make ?sram ?(entries = 8) ?(policy = Replacement.Lru) () =
  let host = Host_memory.create ~frames:256 () in
  ( host,
    Per_process.create ?sram ~host ~pid:(Pid.of_int 2) ~table_entries:entries
      ~policy ~seed:3L () )

let test_basic_lookup () =
  let _, pp = make () in
  let o = Per_process.lookup pp ~vpn:10 ~npages:2 in
  Alcotest.(check bool) "check miss" true o.Per_process.check_miss;
  Alcotest.(check int) "pinned" 2 o.Per_process.pages_pinned;
  Alcotest.(check int) "occupancy" 2 (Per_process.occupancy pp);
  let o2 = Per_process.lookup pp ~vpn:10 ~npages:2 in
  Alcotest.(check bool) "hit" false o2.Per_process.check_miss;
  Alcotest.(check (array int)) "same indices" o.Per_process.indices
    o2.Per_process.indices

let test_ni_reads_table () =
  let host, pp = make () in
  let o = Per_process.lookup pp ~vpn:10 ~npages:1 in
  let index = o.Per_process.indices.(0) in
  let frame = Option.get (Per_process.translate_index pp ~index) in
  Alcotest.(check (option int)) "matches the OS translation" (Some frame)
    (Host_memory.translate host (Pid.of_int 2) ~vpn:10)

let test_unused_index_is_garbage () =
  let _, pp = make () in
  Alcotest.(check (option int)) "unused slot reads garbage" None
    (Per_process.translate_index pp ~index:5)

let test_capacity_eviction () =
  let _, pp = make ~entries:4 () in
  for vpn = 0 to 3 do
    ignore (Per_process.lookup pp ~vpn ~npages:1)
  done;
  Alcotest.(check int) "full" 4 (Per_process.occupancy pp);
  ignore (Per_process.lookup pp ~vpn:10 ~npages:1);
  Alcotest.(check int) "still full" 4 (Per_process.occupancy pp);
  Alcotest.(check int) "one unpin" 1 (Per_process.unpins pp);
  (* LRU: vpn 0 was evicted. *)
  Alcotest.(check bool) "victim unpinned" false (Per_process.is_pinned pp ~vpn:0);
  Alcotest.(check bool) "new page pinned" true (Per_process.is_pinned pp ~vpn:10)

let test_fragmentation () =
  (* Interleaved use scatters a buffer's translations across the table —
     the fragmentation Hierarchical-UTLB eliminates (Section 3.3). *)
  let _, pp = make ~entries:8 () in
  ignore (Per_process.lookup pp ~vpn:0 ~npages:1) (* index 0 *);
  ignore (Per_process.lookup pp ~vpn:50 ~npages:1) (* index 1 *);
  let o = Per_process.lookup pp ~vpn:0 ~npages:2 in
  (* Page 1 lands on index 2, so the buffer maps to indices [0; 2]. *)
  Alcotest.(check bool) "fragmented" true (o.Per_process.index_runs > 1);
  Alcotest.(check (array int)) "indices" [| 0; 2 |] o.Per_process.indices

let test_buffer_larger_than_table () =
  let _, pp = make ~entries:4 () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Per_process.lookup: buffer larger than translation table")
    (fun () -> ignore (Per_process.lookup pp ~vpn:0 ~npages:5))

let test_sram_backing () =
  let sram = Utlb_nic.Sram.create () in
  let _, pp = make ~sram ~entries:16 () in
  Alcotest.(check int) "sram bytes" 128 (Per_process.sram_bytes pp);
  (match Utlb_nic.Sram.region sram "pp-utlb-2" with
  | None -> Alcotest.fail "table region missing"
  | Some region ->
    let o = Per_process.lookup pp ~vpn:3 ~npages:1 in
    let index = o.Per_process.indices.(0) in
    let word = Utlb_nic.Sram.read_word sram region index in
    Alcotest.(check (option int)) "SRAM word holds the frame"
      (Some (Int64.to_int word))
      (Per_process.translate_index pp ~index))

let prop_indices_valid =
  QCheck.Test.make ~name:"returned indices always translate" ~count:80
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 30) (int_range 1 3)))
    (fun lookups ->
      let _, pp = make ~entries:8 () in
      List.for_all
        (fun (vpn, npages) ->
          let o = Per_process.lookup pp ~vpn ~npages in
          Array.for_all
            (fun index -> Per_process.translate_index pp ~index <> None)
            o.Per_process.indices)
        lookups)

let suite =
  [
    Alcotest.test_case "basic lookup" `Quick test_basic_lookup;
    Alcotest.test_case "NI reads table" `Quick test_ni_reads_table;
    Alcotest.test_case "unused index is garbage" `Quick test_unused_index_is_garbage;
    Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
    Alcotest.test_case "fragmentation" `Quick test_fragmentation;
    Alcotest.test_case "buffer larger than table" `Quick test_buffer_larger_than_table;
    Alcotest.test_case "sram backing" `Quick test_sram_backing;
    QCheck_alcotest.to_alcotest prop_indices_valid;
  ]
