open Utlb_trace
module Pid = Utlb_mem.Pid

let seed = 42L

let tolerance = 0.15

let close ~target actual =
  Float.abs (float_of_int actual -. float_of_int target)
  /. float_of_int target
  < tolerance

let test_calibration () =
  (* Every generator must land within 15% of Table 3's footprint and
     lookup count. *)
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = spec.generate ~seed in
      Alcotest.(check bool)
        (spec.name ^ " footprint close to Table 3")
        true
        (close ~target:spec.table3_footprint (Trace.footprint_pages trace));
      Alcotest.(check bool)
        (spec.name ^ " lookups close to Table 3")
        true
        (close ~target:spec.table3_lookups (Trace.length trace)))
    Workloads.all

let test_determinism () =
  List.iter
    (fun (spec : Workloads.spec) ->
      let a = spec.generate ~seed and b = spec.generate ~seed in
      Alcotest.(check int) (spec.name ^ " same length") (Trace.length a)
        (Trace.length b);
      Array.iteri
        (fun i (r : Record.t) ->
          if Record.compare_time r (Trace.records b).(i) <> 0 then
            Alcotest.fail (spec.name ^ ": traces diverge"))
        (Trace.records a))
    [ Workloads.fft; Workloads.water ]

let test_seed_changes_trace () =
  let a = Workloads.raytrace.generate ~seed:1L in
  let b = Workloads.raytrace.generate ~seed:2L in
  let exists2 x y =
    let n = min (Array.length x) (Array.length y) in
    let rec go i =
      i < n && (Record.compare_time x.(i) y.(i) <> 0 || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "different seeds differ" true
    (Trace.length a <> Trace.length b
    || exists2 (Trace.records a) (Trace.records b))

let test_five_processes () =
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = spec.generate ~seed in
      let pids = List.map Pid.to_int (Trace.pids trace) in
      Alcotest.(check (list int))
        (spec.name ^ " has 4 app + 1 protocol process")
        [ 0; 1; 2; 3; 4 ] pids)
    Workloads.all

let test_timestamps_monotone () =
  let trace = Workloads.lu.generate ~seed in
  let last = ref neg_infinity in
  Trace.iter trace (fun r ->
      if r.Record.time_us < !last then Alcotest.fail "time went backwards";
      last := r.Record.time_us)

let test_protocol_mirrors_app_pages () =
  (* The protocol process touches only pages that application processes
     also touch (SVM home traffic). *)
  let trace = Workloads.volrend.generate ~seed in
  let app_pages = Hashtbl.create 1024 in
  Trace.iter trace (fun r ->
      if Pid.to_int r.Record.pid < Workloads.app_processes then
        for i = 0 to r.Record.npages - 1 do
          Hashtbl.replace app_pages (r.Record.vpn + i) ()
        done);
  let stray = ref 0 in
  Trace.iter trace (fun r ->
      if Pid.equal r.Record.pid Workloads.protocol_pid then
        for i = 0 to r.Record.npages - 1 do
          if not (Hashtbl.mem app_pages (r.Record.vpn + i)) then incr stray
        done);
  (* Block rounding can graze a page or two outside; essentially all
     mirror traffic must target app pages. *)
  Alcotest.(check bool) "mirrors app pages" true (!stray < 20)

let test_partitions_alias_mod_16384 () =
  (* The SPMD layout property behind Table 8: different processes'
     partitions occupy vpn ranges congruent modulo 16384. *)
  let trace = Workloads.water.generate ~seed in
  let mins = Hashtbl.create 8 in
  Trace.iter trace (fun r ->
      let p = Pid.to_int r.Record.pid in
      if p < Workloads.app_processes then
        let cur = Option.value ~default:max_int (Hashtbl.find_opt mins p) in
        if r.Record.vpn < cur then Hashtbl.replace mins p r.Record.vpn);
  let base0 = Hashtbl.find mins 0 mod 16384 in
  for p = 1 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "pid %d aliases pid 0" p)
      base0
      (Hashtbl.find mins p mod 16384)
  done

let test_find () =
  Alcotest.(check bool) "find fft" true (Workloads.find "FFT" <> None);
  Alcotest.(check bool) "unknown" true (Workloads.find "doom" = None);
  Alcotest.(check int) "seven workloads" 7 (List.length Workloads.all)



let test_scaled () =
  let base = Workloads.water in
  let double = Workloads.scaled base ~factor:2.0 in
  let t1 = base.generate ~seed and t2 = double.generate ~seed in
  let f1 = Trace.footprint_pages t1 and f2 = Trace.footprint_pages t2 in
  Alcotest.(check bool) "footprint roughly doubles" true
    (float_of_int f2 > 1.7 *. float_of_int f1
    && float_of_int f2 < 2.3 *. float_of_int f1);
  Alcotest.(check bool) "lookups grow" true (Trace.length t2 > Trace.length t1);
  (* Scaling composes. *)
  let back = Workloads.scaled double ~factor:0.5 in
  let t3 = back.generate ~seed in
  Alcotest.(check bool) "rescaling back" true
    (abs (Trace.footprint_pages t3 - f1) < f1 / 5)

let test_scaled_invalid () =
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Workloads.scaled: factor must be positive") (fun () ->
      ignore (Workloads.scaled Workloads.fft ~factor:0.0))



let test_multiprogram () =
  let mix = Workloads.multiprogram [ Workloads.water; Workloads.barnes ] in
  let trace = mix.generate ~seed in
  (* Two applications, each with 4 app processes + 1 protocol process,
     pids renumbered into disjoint ranges. *)
  Alcotest.(check (list int)) "ten disjoint pids"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.map Pid.to_int (Trace.pids trace));
  let w = Workloads.water.generate ~seed in
  let b = Workloads.barnes.generate ~seed:(Int64.add seed 7919L) in
  Alcotest.(check int) "records are the union"
    (Trace.length w + Trace.length b)
    (Trace.length trace);
  (* Composes with scaling. *)
  let half = Workloads.scaled mix ~factor:0.5 in
  Alcotest.(check bool) "scaled mix shrinks" true
    (Trace.length (half.generate ~seed) < Trace.length trace)

let test_multiprogram_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Workloads.multiprogram: empty list") (fun () ->
      ignore (Workloads.multiprogram []))

let suite =
  [
    Alcotest.test_case "Table 3 calibration" `Slow test_calibration;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_trace;
    Alcotest.test_case "five processes" `Slow test_five_processes;
    Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
    Alcotest.test_case "protocol mirrors app pages" `Quick
      test_protocol_mirrors_app_pages;
    Alcotest.test_case "partitions alias mod 16384" `Quick
      test_partitions_alias_mod_16384;
    Alcotest.test_case "find by name" `Quick test_find;
    Alcotest.test_case "scaled workloads" `Slow test_scaled;
    Alcotest.test_case "scaled invalid factor" `Quick test_scaled_invalid;
    Alcotest.test_case "multiprogram mix" `Slow test_multiprogram;
    Alcotest.test_case "multiprogram empty" `Quick test_multiprogram_empty;
  ]
