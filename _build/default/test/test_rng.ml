open Utlb_sim

let test_determinism () =
  let a = Rng.create ~seed:1234L and b = Rng.create ~seed:1234L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next_int64 a) (Rng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independence () =
  let parent = Rng.create ~seed:7L in
  let child = Rng.split parent in
  let c1 = Rng.next_int64 child and p1 = Rng.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_copy () =
  let a = Rng.create ~seed:9L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_int_bounds_invalid () =
  let rng = Rng.create ~seed:5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_geometric_invalid () =
  let rng = Rng.create ~seed:5L in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Rng.geometric: p must be in (0, 1]") (fun () ->
      ignore (Rng.geometric rng ~p:0.0))

let test_pick_empty () =
  let rng = Rng.create ~seed:5L in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:21L in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays within bounds" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

let prop_geometric_nonneg =
  QCheck.Test.make ~name:"Rng.geometric is non-negative" ~count:300
    QCheck.(pair small_int (float_range 0.05 1.0))
    (fun (seed, p) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      Rng.geometric rng ~p >= 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int invalid bound" `Quick test_int_bounds_invalid;
    Alcotest.test_case "geometric invalid p" `Quick test_geometric_invalid;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_float_in_bounds;
    QCheck_alcotest.to_alcotest prop_geometric_nonneg;
  ]
