open Utlb_trace
module Rng = Utlb_sim.Rng

let rng () = Rng.create ~seed:3L

let pages_of accs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a : Pattern.access) ->
      for i = 0 to a.npages - 1 do
        Hashtbl.replace seen (a.rel_page + i) ()
      done)
    accs;
  Hashtbl.length seen

let test_sequential () =
  let p = Pattern.sequential ~pages:10 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "ten accesses" 10 (List.length accs);
  Alcotest.(check (list int)) "in order"
    (List.init 10 Fun.id)
    (List.map (fun (a : Pattern.access) -> a.rel_page) accs)

let test_sequential_multi_page () =
  let p = Pattern.sequential ~npages:4 ~pages:10 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "three buffers" 3 (List.length accs);
  (* The last buffer is clamped to the partition end. *)
  let last = List.nth accs 2 in
  Alcotest.(check int) "clamped" 2 last.Pattern.npages;
  Alcotest.(check int) "full coverage" 10 (pages_of accs)

let test_strided_covers_all () =
  let p = Pattern.strided ~stride:7 ~pages:100 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "covers the partition" 100 (pages_of accs);
  Alcotest.(check int) "once each" 100 (List.length accs)

let test_strided_pairs () =
  let p = Pattern.strided ~pairs:true ~pages:50 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "two per page" 100 (List.length accs);
  (* Consecutive accesses form pairs on the same page. *)
  let rec pairs_ok = function
    | (a : Pattern.access) :: b :: rest ->
      a.Pattern.rel_page = b.Pattern.rel_page && pairs_ok rest
    | [] -> true
    | [ _ ] -> false
  in
  Alcotest.(check bool) "paired" true (pairs_ok accs)

let test_cyclic () =
  let p = Pattern.cyclic ~passes:3 ~pages:20 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "three passes" 60 (List.length accs);
  Alcotest.(check int) "coverage" 20 (pages_of accs)

let test_hot_cold_bias () =
  let p = Pattern.hot_cold ~hot_fraction:0.1 ~hot_bias:0.9 ~lookups:5000 ~pages:1000 in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check int) "lookup count" 5000 (List.length accs);
  (* Count accesses per page; the top decile should absorb most. *)
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (a : Pattern.access) ->
      Hashtbl.replace counts a.Pattern.rel_page
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.Pattern.rel_page)))
    accs;
  let sorted =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts [] |> List.sort (fun a b -> compare b a)
  in
  let top100 = List.filteri (fun i _ -> i < 100) sorted in
  let hot_share =
    float_of_int (List.fold_left ( + ) 0 top100) /. 5000.0
  in
  Alcotest.(check bool) "top decile takes most accesses" true (hot_share > 0.8)

let test_uniform_random_bounds () =
  let p = Pattern.uniform_random ~lookups:2000 ~pages:50 () in
  let accs = Pattern.accesses p (rng ()) in
  Alcotest.(check bool) "in bounds" true
    (List.for_all
       (fun (a : Pattern.access) ->
         a.Pattern.rel_page >= 0 && a.Pattern.rel_page + a.Pattern.npages <= 50)
       accs)

let test_concat_repeat () =
  let p =
    Pattern.concat
      [ Pattern.sequential ~pages:5 (); Pattern.sequential ~pages:3 () ]
  in
  Alcotest.(check int) "pages is max" 5 (Pattern.pages p);
  Alcotest.(check int) "accesses concatenated" 8
    (List.length (Pattern.accesses p (rng ())));
  let r = Pattern.repeat 3 (Pattern.sequential ~pages:4 ()) in
  Alcotest.(check int) "repeated" 12 (List.length (Pattern.accesses r (rng ())))

let test_mix () =
  let p =
    Pattern.mix
      [ (0.5, Pattern.sequential ~pages:10 ());
        (0.5, Pattern.uniform_random ~lookups:10 ~pages:10 ()) ]
      ~lookups:400
  in
  Alcotest.(check int) "mix length" 400 (List.length (Pattern.accesses p (rng ())))

let test_validation () =
  Alcotest.check_raises "pages 0" (Invalid_argument "Pattern: pages must be positive")
    (fun () -> ignore (Pattern.sequential ~pages:0 ()));
  Alcotest.check_raises "empty concat"
    (Invalid_argument "Pattern.concat: empty list") (fun () ->
      ignore (Pattern.concat []));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Pattern.hot_cold: hot_fraction must be in (0, 1)")
    (fun () ->
      ignore (Pattern.hot_cold ~hot_fraction:1.5 ~hot_bias:0.5 ~lookups:1 ~pages:1))

let test_to_trace_layout () =
  let p = Pattern.cyclic ~passes:1 ~pages:100 () in
  let trace = Pattern.to_trace ~seed:1L p in
  (* Four app processes plus the protocol mirror process. *)
  Alcotest.(check int) "five pids" 5 (List.length (Trace.pids trace));
  (* SPMD aliasing: per-process bases congruent mod 16384. *)
  let mins = Hashtbl.create 8 in
  Trace.iter trace (fun r ->
      let pid = Utlb_mem.Pid.to_int r.Record.pid in
      if pid < 4 then
        let cur = Option.value ~default:max_int (Hashtbl.find_opt mins pid) in
        if r.Record.vpn < cur then Hashtbl.replace mins pid r.Record.vpn);
  let base = Hashtbl.find mins 0 mod 16384 in
  for pid = 1 to 3 do
    Alcotest.(check int) "aliased" base (Hashtbl.find mins pid mod 16384)
  done

let test_trace_runs_through_simulator () =
  let p =
    Pattern.mix
      [ (0.7, Pattern.cyclic ~passes:4 ~pages:1500 ());
        (0.3, Pattern.uniform_random ~lookups:1000 ~pages:1500 ()) ]
      ~lookups:6000
  in
  let trace = Pattern.to_trace ~seed:5L p in
  let r =
    Utlb.Sim_driver.run (Utlb.Sim_driver.Utlb Utlb.Hier_engine.default_config)
      trace
  in
  Alcotest.(check int) "all lookups simulated" (Trace.length trace)
    r.Utlb.Report.lookups;
  Alcotest.(check bool) "no unpins (infinite memory)" true
    (r.Utlb.Report.pages_unpinned = 0)

let prop_deterministic =
  QCheck.Test.make ~name:"pattern generation is deterministic" ~count:50
    QCheck.(pair (int_range 1 200) small_int)
    (fun (pages, seed) ->
      let p = Pattern.cyclic ~passes:2 ~pages () in
      let a = Pattern.accesses p (Rng.create ~seed:(Int64.of_int seed)) in
      let b = Pattern.accesses p (Rng.create ~seed:(Int64.of_int seed)) in
      a = b)

let suite =
  [
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "sequential multi-page" `Quick test_sequential_multi_page;
    Alcotest.test_case "strided covers all" `Quick test_strided_covers_all;
    Alcotest.test_case "strided pairs" `Quick test_strided_pairs;
    Alcotest.test_case "cyclic" `Quick test_cyclic;
    Alcotest.test_case "hot/cold bias" `Quick test_hot_cold_bias;
    Alcotest.test_case "uniform random bounds" `Quick test_uniform_random_bounds;
    Alcotest.test_case "concat/repeat" `Quick test_concat_repeat;
    Alcotest.test_case "mix" `Quick test_mix;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "to_trace layout" `Quick test_to_trace_layout;
    Alcotest.test_case "runs through simulator" `Quick
      test_trace_runs_through_simulator;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
