open Utlb
module Pid = Utlb_mem.Pid

let pid0 = Pid.of_int 0

let pid1 = Pid.of_int 1

let direct entries = { Ni_cache.entries; associativity = Ni_cache.Direct }

let test_insert_lookup () =
  let c = Ni_cache.create (direct 64) in
  Alcotest.(check (option int)) "cold miss" None
    (Ni_cache.lookup c ~pid:pid0 ~vpn:5);
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:5 ~frame:99);
  Alcotest.(check (option int)) "hit" (Some 99)
    (Ni_cache.lookup c ~pid:pid0 ~vpn:5);
  Alcotest.(check int) "hits" 1 (Ni_cache.hits c);
  Alcotest.(check int) "misses" 1 (Ni_cache.misses c);
  Alcotest.(check int) "valid lines" 1 (Ni_cache.valid_lines c)

let test_pid_tagging () =
  let c = Ni_cache.create (direct 64) in
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:5 ~frame:10);
  Alcotest.(check (option int)) "other pid misses" None
    (Ni_cache.lookup c ~pid:pid1 ~vpn:5)

let test_direct_nohash_conflict () =
  (* Same vpn from two pids: under nohash they share a line; with
     offsetting they do not. *)
  let nohash =
    Ni_cache.create
      { Ni_cache.entries = 64; associativity = Ni_cache.Direct_nohash }
  in
  ignore (Ni_cache.insert nohash ~pid:pid0 ~vpn:5 ~frame:1);
  (match Ni_cache.insert nohash ~pid:pid1 ~vpn:5 ~frame:2 with
  | Some (epid, evpn, _) ->
    Alcotest.(check int) "evicted pid0's line" 0 (Pid.to_int epid);
    Alcotest.(check int) "evicted vpn" 5 evpn
  | None -> Alcotest.fail "nohash should conflict");
  let offset = Ni_cache.create (direct 64) in
  ignore (Ni_cache.insert offset ~pid:pid0 ~vpn:5 ~frame:1);
  Alcotest.(check bool) "offsetting avoids the conflict" true
    (Ni_cache.insert offset ~pid:pid1 ~vpn:5 ~frame:2 = None);
  Alcotest.(check (option int)) "both present" (Some 1)
    (Ni_cache.lookup offset ~pid:pid0 ~vpn:5)

let test_direct_eviction () =
  let c = Ni_cache.create (direct 16) in
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:1);
  (* vpn 3+16 maps to the same set in a 16-entry direct cache. *)
  (match Ni_cache.insert c ~pid:pid0 ~vpn:19 ~frame:2 with
  | Some (_, evpn, eframe) ->
    Alcotest.(check int) "evicted vpn" 3 evpn;
    Alcotest.(check int) "evicted frame" 1 eframe
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check int) "evictions" 1 (Ni_cache.evictions c);
  Alcotest.(check int) "still one line" 1 (Ni_cache.valid_lines c)

let test_two_way_avoids_conflict () =
  let c =
    Ni_cache.create { Ni_cache.entries = 32; associativity = Ni_cache.Two_way }
  in
  (* Two pages mapping to the same set coexist in a 2-way cache. *)
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:1);
  Alcotest.(check bool) "no eviction" true
    (Ni_cache.insert c ~pid:pid0 ~vpn:(3 + 16) ~frame:2 = None);
  Alcotest.(check (option int)) "first survives" (Some 1)
    (Ni_cache.lookup c ~pid:pid0 ~vpn:3);
  Alcotest.(check (option int)) "second present" (Some 2)
    (Ni_cache.lookup c ~pid:pid0 ~vpn:19);
  (* A third conflicting page evicts the set's LRU. *)
  ignore (Ni_cache.lookup c ~pid:pid0 ~vpn:19);
  (match Ni_cache.insert c ~pid:pid0 ~vpn:(3 + 32) ~frame:3 with
  | Some (_, evpn, _) -> Alcotest.(check int) "evicts set LRU" 3 evpn
  | None -> Alcotest.fail "expected set eviction")

let test_refresh_in_place () =
  let c = Ni_cache.create (direct 16) in
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:1);
  Alcotest.(check bool) "refresh evicts nothing" true
    (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:7 = None);
  Alcotest.(check (option int)) "new frame" (Some 7)
    (Ni_cache.lookup c ~pid:pid0 ~vpn:3);
  Alcotest.(check int) "one line" 1 (Ni_cache.valid_lines c)

let test_invalidate () =
  let c = Ni_cache.create (direct 16) in
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:1);
  Alcotest.(check bool) "present" true (Ni_cache.invalidate c ~pid:pid0 ~vpn:3);
  Alcotest.(check bool) "absent" false (Ni_cache.invalidate c ~pid:pid0 ~vpn:3);
  Alcotest.(check int) "no lines" 0 (Ni_cache.valid_lines c)

let test_invalidate_process () =
  let c = Ni_cache.create (direct 64) in
  for vpn = 0 to 9 do
    ignore (Ni_cache.insert c ~pid:pid0 ~vpn ~frame:vpn)
  done;
  ignore (Ni_cache.insert c ~pid:pid1 ~vpn:100 ~frame:1);
  Alcotest.(check int) "dropped pid0 lines" 10
    (Ni_cache.invalidate_process c ~pid:pid0);
  Alcotest.(check int) "pid1 survives" 1 (Ni_cache.valid_lines c)

let test_contains_no_side_effect () =
  let c = Ni_cache.create (direct 16) in
  ignore (Ni_cache.insert c ~pid:pid0 ~vpn:3 ~frame:1);
  let h = Ni_cache.hits c and m = Ni_cache.misses c in
  Alcotest.(check bool) "contains" true (Ni_cache.contains c ~pid:pid0 ~vpn:3);
  Alcotest.(check bool) "not contains" false
    (Ni_cache.contains c ~pid:pid0 ~vpn:4);
  Alcotest.(check int) "hits unchanged" h (Ni_cache.hits c);
  Alcotest.(check int) "misses unchanged" m (Ni_cache.misses c)

let test_probe_cost () =
  let direct_c = Ni_cache.create (direct 64) in
  let four =
    Ni_cache.create { Ni_cache.entries = 64; associativity = Ni_cache.Four_way }
  in
  ignore (Ni_cache.insert direct_c ~pid:pid0 ~vpn:1 ~frame:1);
  ignore (Ni_cache.insert four ~pid:pid0 ~vpn:1 ~frame:1);
  ignore (Ni_cache.lookup direct_c ~pid:pid0 ~vpn:1);
  ignore (Ni_cache.lookup four ~pid:pid0 ~vpn:1);
  Alcotest.(check int) "direct probes once" 1
    (Ni_cache.probe_cost_entries direct_c);
  (* 4-way may need up to 4 probes on a miss in the set. *)
  ignore (Ni_cache.lookup four ~pid:pid0 ~vpn:999);
  Alcotest.(check bool) "assoc probes more" true
    (Ni_cache.probe_cost_entries four > 1)

let test_geometry_validation () =
  Alcotest.check_raises "non power of two sets"
    (Invalid_argument "Ni_cache.create: set count must be a power of two")
    (fun () -> ignore (Ni_cache.create (direct 100)));
  Alcotest.check_raises "entries not multiple of ways"
    (Invalid_argument "Ni_cache.create: entries must be a positive multiple of ways")
    (fun () ->
      ignore
        (Ni_cache.create
           { Ni_cache.entries = 33; associativity = Ni_cache.Two_way }))

let test_size_bytes () =
  let c = Ni_cache.create (direct 8192) in
  Alcotest.(check int) "paper's 32 KB at 8K entries" 32768 (Ni_cache.size_bytes c)

let prop_valid_lines_bounded =
  QCheck.Test.make ~name:"valid lines never exceed capacity" ~count:100
    QCheck.(list (pair (int_bound 1) (int_bound 500)))
    (fun ops ->
      let c = Ni_cache.create (direct 32) in
      List.iter
        (fun (p, vpn) ->
          ignore (Ni_cache.insert c ~pid:(Pid.of_int p) ~vpn ~frame:vpn))
        ops;
      Ni_cache.valid_lines c <= 32)

let prop_lookup_after_insert =
  QCheck.Test.make ~name:"a freshly inserted mapping is a hit" ~count:200
    QCheck.(pair (int_bound 3) (int_bound 100000))
    (fun (p, vpn) ->
      let c = Ni_cache.create (direct 1024) in
      let pid = Pid.of_int p in
      ignore (Ni_cache.insert c ~pid ~vpn ~frame:7);
      Ni_cache.lookup c ~pid ~vpn = Some 7)

let suite =
  [
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "pid tagging" `Quick test_pid_tagging;
    Alcotest.test_case "nohash conflicts, offset avoids" `Quick
      test_direct_nohash_conflict;
    Alcotest.test_case "direct eviction" `Quick test_direct_eviction;
    Alcotest.test_case "two-way avoids conflict" `Quick test_two_way_avoids_conflict;
    Alcotest.test_case "refresh in place" `Quick test_refresh_in_place;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "invalidate process" `Quick test_invalidate_process;
    Alcotest.test_case "contains has no side effects" `Quick
      test_contains_no_side_effect;
    Alcotest.test_case "probe cost" `Quick test_probe_cost;
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    Alcotest.test_case "size bytes" `Quick test_size_bytes;
    QCheck_alcotest.to_alcotest prop_valid_lines_bounded;
    QCheck_alcotest.to_alcotest prop_lookup_after_insert;
  ]
