open Utlb_trace
module Pid = Utlb_mem.Pid

let rec_ ?(t = 1.0) ?(pid = 0) ?(npages = 1) ?(op = Record.Send) vpn =
  Record.make ~time_us:t ~pid:(Pid.of_int pid) ~vpn ~npages ~op

let test_record_roundtrip () =
  let r = rec_ ~t:12.345 ~pid:3 ~npages:4 ~op:Record.Fetch 777 in
  match Record.of_string (Record.to_string r) with
  | Ok r' ->
    Alcotest.(check (float 1e-3)) "time" r.Record.time_us r'.Record.time_us;
    Alcotest.(check int) "pid" 3 (Pid.to_int r'.Record.pid);
    Alcotest.(check int) "vpn" 777 r'.Record.vpn;
    Alcotest.(check int) "npages" 4 r'.Record.npages;
    Alcotest.(check bool) "op" true (r'.Record.op = Record.Fetch)
  | Error e -> Alcotest.fail e

let test_record_parse_errors () =
  (match Record.of_string "not a record" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected field-count error");
  match Record.of_string "1.0 0 5 1 Q" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected bad op error"

let test_record_validation () =
  Alcotest.check_raises "npages" (Invalid_argument "Record.make: npages must be >= 1")
    (fun () -> ignore (rec_ ~npages:0 1))

let test_trace_sorting () =
  let t =
    Trace.of_records [| rec_ ~t:3.0 1; rec_ ~t:1.0 2; rec_ ~t:2.0 3 |]
  in
  let times =
    Array.to_list (Array.map (fun (r : Record.t) -> r.Record.time_us) (Trace.records t))
  in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 2.0; 3.0 ] times

let test_trace_stats () =
  let t =
    Trace.of_records
      [|
        rec_ ~pid:0 ~npages:2 10 (* pages 10, 11 *);
        rec_ ~pid:0 10 (* page 10 again *);
        rec_ ~pid:1 10 (* same page, other pid *);
        rec_ ~pid:1 20;
      |]
  in
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check int) "footprint counts distinct vpns" 3
    (Trace.footprint_pages t);
  Alcotest.(check int) "pages touched" 5 (Trace.total_pages_touched t);
  Alcotest.(check (list (pair int int)))
    "per pid"
    [ (0, 2); (1, 2) ]
    (List.map
       (fun (p, n) -> (Pid.to_int p, n))
       (Trace.per_pid_footprint t))

let test_trace_merge () =
  let a = Trace.of_records [| rec_ ~t:1.0 1; rec_ ~t:3.0 2 |] in
  let b = Trace.of_records [| rec_ ~t:2.0 3 |] in
  let m = Trace.merge [ a; b ] in
  Alcotest.(check int) "merged length" 3 (Trace.length m);
  let vpns = Array.map (fun (r : Record.t) -> r.Record.vpn) (Trace.records m) in
  Alcotest.(check (array int)) "interleaved by time" [| 1; 3; 2 |] vpns

let test_save_load_roundtrip () =
  let t =
    Trace.of_records
      (Array.init 50 (fun i -> rec_ ~t:(float_of_int i) ~pid:(i mod 3) (i * 7)))
  in
  let file = Filename.temp_file "utlb" ".trace" in
  Out_channel.with_open_text file (fun oc -> Trace.save t oc);
  let result = In_channel.with_open_text file Trace.load in
  Sys.remove file;
  match result with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
    Array.iteri
      (fun i (r : Record.t) ->
        let r' = (Trace.records t').(i) in
        Alcotest.(check int) "vpn" r.Record.vpn r'.Record.vpn)
      (Trace.records t)

let test_load_skips_comments () =
  let file = Filename.temp_file "utlb" ".trace" in
  Out_channel.with_open_text file (fun oc ->
      output_string oc "# a comment\n\n1.0 0 5 1 S\n");
  let result = In_channel.with_open_text file Trace.load in
  Sys.remove file;
  match result with
  | Ok t -> Alcotest.(check int) "one record" 1 (Trace.length t)
  | Error e -> Alcotest.fail e

let prop_roundtrip =
  QCheck.Test.make ~name:"record to_string/of_string roundtrip" ~count:200
    QCheck.(quad (int_bound 7) (int_bound 100000) (int_range 1 8) bool)
    (fun (pid, vpn, npages, send) ->
      let op = if send then Record.Send else Record.Fetch in
      let r = rec_ ~t:5.25 ~pid ~npages ~op vpn in
      match Record.of_string (Record.to_string r) with
      | Ok r' -> Record.compare_time r r' = 0 && r'.Record.npages = npages
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record parse errors" `Quick test_record_parse_errors;
    Alcotest.test_case "record validation" `Quick test_record_validation;
    Alcotest.test_case "trace sorting" `Quick test_trace_sorting;
    Alcotest.test_case "trace stats" `Quick test_trace_stats;
    Alcotest.test_case "trace merge" `Quick test_trace_merge;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "load skips comments" `Quick test_load_skips_comments;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
