open Utlb
module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory

let pid0 = Pid.of_int 0

let pid1 = Pid.of_int 1

let make ?host ?(config = Hier_engine.default_config) () =
  Hier_engine.create ?host ~seed:99L config

let test_first_lookup_pins_and_misses () =
  let e = make () in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2 in
  Alcotest.(check bool) "check miss" true o.Hier_engine.check_miss;
  Alcotest.(check int) "pinned" 2 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "one ioctl for the contiguous run" 1
    o.Hier_engine.pin_calls;
  Alcotest.(check int) "NI misses" 2 o.Hier_engine.ni_misses;
  Alcotest.(check int) "no unpins" 0 o.Hier_engine.pages_unpinned

let test_second_lookup_all_hits () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2 in
  Alcotest.(check bool) "no check miss" false o.Hier_engine.check_miss;
  Alcotest.(check int) "no pins" 0 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "no NI misses" 0 o.Hier_engine.ni_misses

let test_partial_overlap_pins_remainder () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:101 ~npages:3 in
  Alcotest.(check bool) "check miss" true o.Hier_engine.check_miss;
  Alcotest.(check int) "only the new pages pinned" 2 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "only the new pages miss" 2 o.Hier_engine.ni_misses

let test_layers_consistent () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:50 ~npages:4);
  Alcotest.(check int) "bitvec population" 4 (Hier_engine.pinned_pages e pid0);
  Alcotest.(check int) "host agrees" 4
    (Host_memory.pinned_pages (Hier_engine.host e) pid0);
  Alcotest.(check int) "table agrees" 4
    (Translation_table.valid_entries (Hier_engine.table e pid0));
  Alcotest.(check bool) "translate works" true
    (Hier_engine.translate e ~pid:pid0 ~vpn:52 <> None)

let test_process_isolation () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:50 ~npages:1);
  ignore (Hier_engine.lookup e ~pid:pid1 ~vpn:50 ~npages:1);
  let f0 = Option.get (Hier_engine.translate e ~pid:pid0 ~vpn:50) in
  let f1 = Option.get (Hier_engine.translate e ~pid:pid1 ~vpn:50) in
  Alcotest.(check bool) "distinct frames" true (f0 <> f1);
  Alcotest.(check int) "per-process pin accounting" 1
    (Hier_engine.pinned_pages e pid1)

let test_memory_limit_evicts_lru () =
  let config =
    { Hier_engine.default_config with memory_limit_pages = Some 4 }
  in
  let e = make ~config () in
  for vpn = 0 to 3 do
    ignore (Hier_engine.lookup e ~pid:pid0 ~vpn ~npages:1)
  done;
  (* Touch page 0 so page 1 is the LRU. *)
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:1 in
  Alcotest.(check int) "one unpin" 1 o.Hier_engine.pages_unpinned;
  Alcotest.(check int) "limit respected" 4 (Hier_engine.pinned_pages e pid0);
  Alcotest.(check bool) "LRU page 1 went" false
    (Hier_engine.is_pinned e ~pid:pid0 ~vpn:1);
  Alcotest.(check bool) "page 0 kept" true
    (Hier_engine.is_pinned e ~pid:pid0 ~vpn:0);
  (* The unpinned page must be gone from every layer. *)
  Alcotest.(check (option int)) "table invalidated" None
    (Hier_engine.translate e ~pid:pid0 ~vpn:1);
  Alcotest.(check bool) "cache invalidated" false
    (Ni_cache.contains (Hier_engine.cache e) ~pid:pid0 ~vpn:1)

let test_limit_never_unpins_current_request () =
  let config =
    { Hier_engine.default_config with memory_limit_pages = Some 2 }
  in
  let e = make ~config () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:2);
  (* A 2-page request exactly fills the budget; the old pages go, the
     requested pages must survive. *)
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:2);
  Alcotest.(check bool) "requested pinned" true
    (Hier_engine.is_pinned e ~pid:pid0 ~vpn:10);
  Alcotest.(check bool) "requested pinned 2" true
    (Hier_engine.is_pinned e ~pid:pid0 ~vpn:11);
  Alcotest.(check int) "limit" 2 (Hier_engine.pinned_pages e pid0)

let test_prepin () =
  let config = { Hier_engine.default_config with prepin = 8 } in
  let e = make ~config () in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1 in
  Alcotest.(check int) "prepins 8 pages" 8 o.Hier_engine.pages_pinned;
  (* The pre-pinned neighbours no longer check-miss. *)
  let o2 = Hier_engine.lookup e ~pid:pid0 ~vpn:104 ~npages:1 in
  Alcotest.(check bool) "no check miss" false o2.Hier_engine.check_miss

let test_prefetch_fills_neighbours () =
  let config =
    { Hier_engine.default_config with prefetch = 4; prepin = 4 }
  in
  let e = make ~config () in
  let o1 = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1 in
  Alcotest.(check int) "one miss" 1 o1.Hier_engine.ni_misses;
  Alcotest.(check int) "fetched 4 entries" 4 o1.Hier_engine.entries_fetched;
  (* The neighbours now hit in the NI cache. *)
  let o2 = Hier_engine.lookup e ~pid:pid0 ~vpn:101 ~npages:3 in
  Alcotest.(check int) "prefetched pages hit" 0 o2.Hier_engine.ni_misses

let test_prefetch_skips_unpinned () =
  (* Prefetch without prepin: entries beyond the pinned page hold the
     garbage frame and must not be cached. *)
  let config = { Hier_engine.default_config with prefetch = 4 } in
  let e = make ~config () in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1 in
  Alcotest.(check int) "only the valid entry cached" 1
    o.Hier_engine.entries_fetched;
  Alcotest.(check bool) "neighbour not cached" false
    (Ni_cache.contains (Hier_engine.cache e) ~pid:pid0 ~vpn:101)

let test_cache_eviction_keeps_translation_alive () =
  (* UTLB's key difference from Intr: an entry evicted from the NI cache
     still translates from the host table with no new pinning. *)
  let config =
    {
      Hier_engine.default_config with
      cache = { Ni_cache.entries = 4; associativity = Ni_cache.Direct };
    }
  in
  let e = make ~config () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  (* Evict vpn 0's line (4-entry direct cache: vpn 4 shares index 0). *)
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:4 ~npages:1);
  Alcotest.(check bool) "cache line gone" false
    (Ni_cache.contains (Hier_engine.cache e) ~pid:pid0 ~vpn:0);
  Alcotest.(check bool) "still pinned" true
    (Hier_engine.is_pinned e ~pid:pid0 ~vpn:0);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1 in
  Alcotest.(check bool) "no re-pin" false o.Hier_engine.check_miss;
  Alcotest.(check int) "NI miss refilled from table" 1 o.Hier_engine.ni_misses;
  Alcotest.(check int) "without pinning" 0 o.Hier_engine.pages_pinned

let test_report_accumulates () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:9 ~npages:1);
  let r = Hier_engine.report e ~label:"t" in
  Alcotest.(check int) "lookups" 3 r.Report.lookups;
  Alcotest.(check int) "check misses" 2 r.Report.check_misses;
  Alcotest.(check int) "ni miss lookups" 2 r.Report.ni_miss_lookups;
  Alcotest.(check int) "compulsory" 2 r.Report.compulsory

let test_invalid_npages () =
  let e = make () in
  Alcotest.check_raises "npages 0"
    (Invalid_argument "Hier_engine.lookup: npages must be >= 1") (fun () ->
      ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:0))

let prop_pin_accounting =
  QCheck.Test.make
    ~name:"bitvec, host and table always agree on the pinned set" ~count:60
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 100) (int_range 1 4)))
    (fun lookups ->
      let config =
        { Hier_engine.default_config with memory_limit_pages = Some 16 }
      in
      let e = make ~config () in
      List.iter
        (fun (vpn, npages) ->
          ignore (Hier_engine.lookup e ~pid:pid0 ~vpn ~npages))
        lookups;
      let bitvec = Hier_engine.pinned_pages e pid0 in
      bitvec <= 16 + 4
      && bitvec = Host_memory.pinned_pages (Hier_engine.host e) pid0
      && bitvec = Translation_table.valid_entries (Hier_engine.table e pid0))



let test_swapped_table_interrupt_and_recovery () =
  (* Section 3.3's rare path: a second-level translation table is
     swapped to disk; the next NI access interrupts the host, swaps it
     back, and the lookup still succeeds. *)
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  (* Evict the cache line so the NI must go back to the table. *)
  ignore (Ni_cache.invalidate (Hier_engine.cache e) ~pid:pid0 ~vpn:100);
  Alcotest.(check bool) "table swapped out" true
    (Translation_table.swap_out (Hier_engine.table e pid0) ~dir_index:0
       ~disk_block:42);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1 in
  Alcotest.(check bool) "still no check miss (page pinned)" false
    o.Hier_engine.check_miss;
  Alcotest.(check int) "entry recovered" 1 o.Hier_engine.entries_fetched;
  let r = Hier_engine.report e ~label:"swap" in
  Alcotest.(check int) "one swap interrupt" 1 r.Report.interrupts;
  Alcotest.(check int) "table resident again" 0
    (Translation_table.swapped_tables (Hier_engine.table e pid0));
  (* Subsequent lookups are back on the fast path. *)
  let o2 = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1 in
  Alcotest.(check int) "cache hit" 0 o2.Hier_engine.ni_misses

let test_remove_process_releases_everything () =
  let e = make () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:5);
  ignore (Hier_engine.lookup e ~pid:pid1 ~vpn:10 ~npages:2);
  Alcotest.(check int) "releases pid0's pages" 5
    (Hier_engine.remove_process e pid0);
  Alcotest.(check int) "unknown afterwards" 0 (Hier_engine.remove_process e pid0);
  Alcotest.(check int) "pid1 untouched" 2 (Hier_engine.pinned_pages e pid1);
  Alcotest.(check int) "host released pid0" 0
    (Utlb_mem.Host_memory.pinned_pages (Hier_engine.host e) pid0);
  Alcotest.(check bool) "cache lines dropped" false
    (Ni_cache.contains (Hier_engine.cache e) ~pid:pid0 ~vpn:10)

let suite =
  [
    Alcotest.test_case "first lookup pins and misses" `Quick
      test_first_lookup_pins_and_misses;
    Alcotest.test_case "second lookup hits" `Quick test_second_lookup_all_hits;
    Alcotest.test_case "partial overlap" `Quick test_partial_overlap_pins_remainder;
    Alcotest.test_case "layers consistent" `Quick test_layers_consistent;
    Alcotest.test_case "process isolation" `Quick test_process_isolation;
    Alcotest.test_case "memory limit evicts LRU" `Quick test_memory_limit_evicts_lru;
    Alcotest.test_case "limit protects current request" `Quick
      test_limit_never_unpins_current_request;
    Alcotest.test_case "prepin" `Quick test_prepin;
    Alcotest.test_case "prefetch fills neighbours" `Quick
      test_prefetch_fills_neighbours;
    Alcotest.test_case "prefetch skips unpinned" `Quick test_prefetch_skips_unpinned;
    Alcotest.test_case "eviction keeps translation alive" `Quick
      test_cache_eviction_keeps_translation_alive;
    Alcotest.test_case "report accumulates" `Quick test_report_accumulates;
    Alcotest.test_case "invalid npages" `Quick test_invalid_npages;
    QCheck_alcotest.to_alcotest prop_pin_accounting;
    Alcotest.test_case "swapped table interrupt" `Quick
      test_swapped_table_interrupt_and_recovery;
    Alcotest.test_case "remove process" `Quick
      test_remove_process_releases_everything;
  ]
