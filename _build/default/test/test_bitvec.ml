open Utlb

let test_set_clear () =
  let bv = Bitvec.create () in
  Alcotest.(check bool) "initially clear" false (Bitvec.test bv 100);
  Bitvec.set bv 100;
  Alcotest.(check bool) "set" true (Bitvec.test bv 100);
  Alcotest.(check int) "population" 1 (Bitvec.population bv);
  Bitvec.set bv 100;
  Alcotest.(check int) "idempotent set" 1 (Bitvec.population bv);
  Bitvec.clear bv 100;
  Alcotest.(check bool) "cleared" false (Bitvec.test bv 100);
  Bitvec.clear bv 100;
  Alcotest.(check int) "idempotent clear" 0 (Bitvec.population bv)

let test_sparse_pages () =
  let bv = Bitvec.create () in
  (* Far-apart pages exercise separate chunks. *)
  List.iter (Bitvec.set bv) [ 0; 61; 62; 1_000_000; 5_000_000 ];
  Alcotest.(check int) "population" 5 (Bitvec.population bv);
  Alcotest.(check bool) "far page" true (Bitvec.test bv 5_000_000);
  Alcotest.(check bool) "neighbour clear" false (Bitvec.test bv 4_999_999)

let test_range_queries () =
  let bv = Bitvec.create () in
  List.iter (Bitvec.set bv) [ 10; 11; 13 ];
  Alcotest.(check bool) "not all set" false (Bitvec.all_set bv ~vpn:10 ~count:4);
  Alcotest.(check bool) "prefix set" true (Bitvec.all_set bv ~vpn:10 ~count:2);
  Alcotest.(check (option int)) "first clear" (Some 12)
    (Bitvec.first_clear bv ~vpn:10 ~count:4);
  Alcotest.(check (list int)) "clear pages" [ 12; 14 ]
    (Bitvec.clear_pages bv ~vpn:10 ~count:5)

let test_range_crossing_chunk () =
  let bv = Bitvec.create () in
  (* Range straddling the 62-bit chunk boundary. *)
  for v = 58 to 66 do
    Bitvec.set bv v
  done;
  Alcotest.(check bool) "cross-chunk all_set" true
    (Bitvec.all_set bv ~vpn:58 ~count:9);
  Bitvec.clear bv 62;
  Alcotest.(check (option int)) "finds hole at boundary" (Some 62)
    (Bitvec.first_clear bv ~vpn:58 ~count:9)

let test_invalid () =
  let bv = Bitvec.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Bitvec: negative vpn")
    (fun () -> Bitvec.set bv (-1));
  Alcotest.check_raises "bad count"
    (Invalid_argument "Bitvec: count must be positive") (fun () ->
      ignore (Bitvec.all_set bv ~vpn:0 ~count:0))

let prop_model =
  QCheck.Test.make ~name:"bitvec agrees with a set model" ~count:200
    QCheck.(list (pair bool (int_bound 500)))
    (fun ops ->
      let bv = Bitvec.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (set, v) ->
          if set then begin
            Bitvec.set bv v;
            Hashtbl.replace model v ()
          end
          else begin
            Bitvec.clear bv v;
            Hashtbl.remove model v
          end)
        ops;
      Hashtbl.length model = Bitvec.population bv
      && List.for_all
           (fun v -> Bitvec.test bv v = Hashtbl.mem model v)
           (List.init 501 (fun i -> i)))

let suite =
  [
    Alcotest.test_case "set/clear" `Quick test_set_clear;
    Alcotest.test_case "sparse pages" `Quick test_sparse_pages;
    Alcotest.test_case "range queries" `Quick test_range_queries;
    Alcotest.test_case "range crossing chunk" `Quick test_range_crossing_chunk;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_model;
  ]
