(* Cross-cutting edge cases and failure-injection scenarios that the
   per-module suites do not cover. *)

open Utlb
module Pid = Utlb_mem.Pid
module Rng = Utlb_sim.Rng

let pid0 = Pid.of_int 0

(* A request larger than the pinned-page budget: the engine must pin the
   whole request anyway (correctness over quota) rather than deadlock. *)
let test_request_larger_than_limit () =
  let config =
    { Hier_engine.default_config with memory_limit_pages = Some 2 }
  in
  let e = Hier_engine.create ~seed:1L config in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:6 in
  Alcotest.(check int) "entire request pinned" 6 o.Hier_engine.pages_pinned;
  (* The next request sheds the overshoot back under the limit. *)
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  Alcotest.(check bool) "limit eventually enforced" true
    (Hier_engine.pinned_pages e pid0 <= 6)

(* Host DRAM exhaustion mid-run: lookups keep succeeding structurally
   (garbage entries, no crash) even when pinning fails. *)
let test_host_dram_exhaustion () =
  let host = Utlb_mem.Host_memory.create ~frames:8 () in
  let e = Hier_engine.create ~host ~seed:1L Hier_engine.default_config in
  (* 7 usable frames; pin 7 pages, then keep looking up new ones. *)
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:7);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2 in
  Alcotest.(check int) "nothing pinned once DRAM is gone" 0
    o.Hier_engine.pages_pinned;
  (* The unpinned page reads as untranslatable, not as a stale frame. *)
  Alcotest.(check (option int)) "garbage entry" None
    (Hier_engine.translate e ~pid:pid0 ~vpn:100)

(* A zero-filled NI cache never aliases the garbage frame with a real
   one: frame 0 is reserved. *)
let test_garbage_frame_is_reserved () =
  let host = Utlb_mem.Host_memory.create ~frames:16 () in
  let e = Hier_engine.create ~host ~seed:1L Hier_engine.default_config in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:5 ~npages:1);
  match Hier_engine.translate e ~pid:pid0 ~vpn:5 with
  | Some frame -> Alcotest.(check bool) "frame 0 reserved" true (frame <> 0)
  | None -> Alcotest.fail "expected a translation"

(* Interleaved processes with identical access streams stay isolated
   even under a shared memory limit pressure. *)
let test_many_processes_interleaved () =
  let config =
    { Hier_engine.default_config with memory_limit_pages = Some 32 }
  in
  let e = Hier_engine.create ~seed:3L config in
  for round = 0 to 40 do
    for p = 0 to 7 do
      ignore
        (Hier_engine.lookup e ~pid:(Pid.of_int p) ~vpn:(round * 3) ~npages:3)
    done
  done;
  for p = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "pid %d within limit" p)
      true
      (Hier_engine.pinned_pages e (Pid.of_int p) <= 32)
  done

(* Trace round-trip through the real file system, then simulation of the
   loaded copy must agree exactly with the original. *)
let test_saved_trace_simulates_identically () =
  let spec = Utlb_trace.Workloads.volrend in
  let trace = spec.Utlb_trace.Workloads.generate ~seed:9L in
  let file = Filename.temp_file "utlb-edge" ".trace" in
  Out_channel.with_open_text file (fun oc -> Utlb_trace.Trace.save trace oc);
  let loaded =
    match In_channel.with_open_text file Utlb_trace.Trace.load with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Sys.remove file;
  let run t =
    Sim_driver.run ~seed:1L (Sim_driver.Utlb Hier_engine.default_config) t
  in
  let a = run trace and b = run loaded in
  Alcotest.(check int) "check misses equal" a.Report.check_misses
    b.Report.check_misses;
  Alcotest.(check int) "ni misses equal" a.Report.ni_page_misses
    b.Report.ni_page_misses

(* Randomised differential test: the UTLB engine and the interrupt
   baseline must agree on NI miss behaviour for identical single-page
   streams under infinite memory (same cache geometry). *)
let prop_mechanism_page_misses_agree =
  QCheck.Test.make
    ~name:"UTLB and Intr agree on NI page misses (infinite memory)"
    ~count:40
    QCheck.(list_of_size Gen.(1 -- 120) (int_bound 60))
    (fun vpns ->
      let cache = { Ni_cache.entries = 16; associativity = Ni_cache.Direct } in
      let u =
        Hier_engine.create ~seed:5L
          { Hier_engine.default_config with cache }
      in
      let i =
        Intr_engine.create ~seed:5L
          { Intr_engine.cache; memory_limit_pages = None }
      in
      List.for_all
        (fun vpn ->
          let uo = Hier_engine.lookup u ~pid:pid0 ~vpn ~npages:1 in
          let io = Intr_engine.lookup i ~pid:pid0 ~vpn ~npages:1 in
          uo.Hier_engine.ni_misses = io.Intr_engine.ni_misses)
        vpns)

(* Randomised oracle: replaying any trace prefix gives prefix-consistent
   counters (simulators are incremental, no retroactive accounting). *)
let prop_prefix_consistency =
  QCheck.Test.make ~name:"report counters grow monotonically" ~count:20
    QCheck.(list_of_size Gen.(2 -- 60) (pair (int_bound 40) (int_range 1 3)))
    (fun lookups ->
      let e = Hier_engine.create ~seed:2L Hier_engine.default_config in
      let last = ref (Hier_engine.report e ~label:"x") in
      List.for_all
        (fun (vpn, npages) ->
          ignore (Hier_engine.lookup e ~pid:pid0 ~vpn ~npages);
          let r = Hier_engine.report e ~label:"x" in
          let ok =
            r.Report.lookups = !last.Report.lookups + 1
            && r.Report.check_misses >= !last.Report.check_misses
            && r.Report.ni_page_misses >= !last.Report.ni_page_misses
            && r.Report.pages_pinned >= !last.Report.pages_pinned
          in
          last := r;
          ok)
        lookups)

(* Engine stress: thousands of events with random delays still fire in
   non-decreasing time order. *)
let prop_engine_time_order =
  QCheck.Test.make ~name:"event engine never goes back in time" ~count:20
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1000))
    (fun delays ->
      let engine = Utlb_sim.Engine.create () in
      let last = ref (-1.0) in
      let ok = ref true in
      List.iter
        (fun d ->
          ignore
            (Utlb_sim.Engine.schedule engine
               ~delay:(Utlb_sim.Time.of_us (float_of_int d))
               (fun () ->
                 let now = Utlb_sim.Time.to_us (Utlb_sim.Engine.now engine) in
                 if now < !last then ok := false;
                 last := now)))
        delays;
      Utlb_sim.Engine.run engine;
      !ok)

let suite =
  [
    Alcotest.test_case "request larger than limit" `Quick
      test_request_larger_than_limit;
    Alcotest.test_case "host DRAM exhaustion" `Quick test_host_dram_exhaustion;
    Alcotest.test_case "garbage frame reserved" `Quick
      test_garbage_frame_is_reserved;
    Alcotest.test_case "many processes interleaved" `Quick
      test_many_processes_interleaved;
    Alcotest.test_case "saved trace simulates identically" `Quick
      test_saved_trace_simulates_identically;
    QCheck_alcotest.to_alcotest prop_mechanism_page_misses_agree;
    QCheck_alcotest.to_alcotest prop_prefix_consistency;
    QCheck_alcotest.to_alcotest prop_engine_time_order;
  ]
