(* Shape checks against the paper's evaluation: these assert the
   qualitative findings of Tables 4-8 and Figures 7-8 hold in the
   reproduction, with tolerances (the substrate is synthetic, so exact
   numbers differ; the shape must not). These are the "does the headline
   result reproduce" tests. *)

open Utlb
module Workloads = Utlb_trace.Workloads

let seed = 42L

(* Cache one trace-driven run per configuration across tests. *)
let results : (string, Report.t) Hashtbl.t = Hashtbl.create 64

let utlb_run ?(prefetch = 1) ?(prepin = 1) ?memory_limit ?(entries = 4096)
    ?(assoc = Ni_cache.Direct) (spec : Workloads.spec) =
  let key =
    Printf.sprintf "u:%s:%d:%s:%d:%d:%s" spec.name entries
      (Ni_cache.associativity_name assoc)
      prefetch prepin
      (match memory_limit with None -> "inf" | Some n -> string_of_int n)
  in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
    let config =
      {
        Hier_engine.cache = { Ni_cache.entries; associativity = assoc };
        prefetch;
        prepin;
        policy = Replacement.Lru;
        memory_limit_pages = memory_limit;
      }
    in
    let r = Sim_driver.run_workload ~seed (Sim_driver.Utlb config) spec in
    Hashtbl.replace results key r;
    r

let intr_run ?memory_limit ?(entries = 4096) (spec : Workloads.spec) =
  let key =
    Printf.sprintf "i:%s:%d:%s" spec.name entries
      (match memory_limit with None -> "inf" | Some n -> string_of_int n)
  in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
    let config =
      {
        Intr_engine.cache = { Ni_cache.entries; associativity = Ni_cache.Direct };
        memory_limit_pages = memory_limit;
      }
    in
    let r = Sim_driver.run_workload ~seed (Sim_driver.Intr config) spec in
    Hashtbl.replace results key r;
    r

(* Table 4 finding: with infinite memory UTLB never unpins, while the
   interrupt approach unpins on every cache eviction. *)
let test_utlb_never_unpins_infinite_memory () =
  List.iter
    (fun spec ->
      let u = utlb_run ~entries:1024 spec in
      let i = intr_run ~entries:1024 spec in
      Alcotest.(check int) (spec.Workloads.name ^ " UTLB unpins") 0
        u.Report.pages_unpinned;
      Alcotest.(check bool) (spec.Workloads.name ^ " Intr unpins") true
        (i.Report.pages_unpinned > 0))
    Workloads.all

(* Both mechanisms share the cache structure, so NI miss rates match
   closely under infinite memory. *)
let test_ni_misses_match_across_mechanisms () =
  List.iter
    (fun spec ->
      let u = utlb_run ~entries:4096 spec in
      let i = intr_run ~entries:4096 spec in
      let delta =
        Float.abs (Report.ni_miss_rate u -. Report.ni_miss_rate i)
      in
      Alcotest.(check bool) (spec.Workloads.name ^ " rates close") true
        (delta < 0.05))
    Workloads.all

(* Table 4: the interrupt approach's unpins shrink as the cache grows;
   UTLB is insensitive (its check misses do not depend on the cache). *)
let test_cache_size_sensitivity () =
  List.iter
    (fun spec ->
      let small = intr_run ~entries:1024 spec in
      let large = intr_run ~entries:16384 spec in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " Intr unpins shrink with cache")
        true
        (Report.unpin_rate large <= Report.unpin_rate small +. 1e-9);
      let u_small = utlb_run ~entries:1024 spec in
      let u_large = utlb_run ~entries:16384 spec in
      Alcotest.(check (float 1e-9))
        (spec.Workloads.name ^ " UTLB check misses cache-independent")
        (Report.check_miss_rate u_small)
        (Report.check_miss_rate u_large))
    Workloads.all

(* Table 6 finding: UTLB beats the interrupt approach at small caches
   (Barnes 1K: 2.6 vs 4.9; FFT 1K: 9.0 vs 21.7). *)
let test_utlb_wins_at_small_caches () =
  let model = Cost_model.default in
  List.iter
    (fun spec ->
      let u = utlb_run ~entries:1024 spec in
      let i = intr_run ~entries:1024 spec in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " UTLB cheaper at 1K")
        true
        (Report.utlb_cost_us model u < Report.intr_cost_us model i))
    [ Workloads.barnes; Workloads.fft ]

(* FFT costs more per lookup than Barnes (big footprint, heavy pinning). *)
let test_fft_costlier_than_barnes () =
  let model = Cost_model.default in
  let fft = utlb_run ~entries:4096 Workloads.fft in
  let barnes = utlb_run ~entries:4096 Workloads.barnes in
  Alcotest.(check bool) "fft > barnes" true
    (Report.utlb_cost_us model fft > Report.utlb_cost_us model barnes)

(* Table 5: under a 4 MB limit UTLB still unpins no more than Intr. *)
let test_memory_limit_unpins () =
  List.iter
    (fun spec ->
      let u = utlb_run ~entries:4096 ~memory_limit:1024 spec in
      let i = intr_run ~entries:4096 ~memory_limit:1024 spec in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " UTLB unpins <= Intr unpins")
        true
        (Report.unpin_rate u <= Report.unpin_rate i +. 0.02))
    Workloads.all

(* FFT's check misses roughly double when memory is tight (0.25 -> 0.49
   in the paper): evicted pages must be re-pinned on the next pass. *)
let test_fft_check_misses_rise_under_limit () =
  let free = utlb_run ~entries:4096 Workloads.fft in
  let tight = utlb_run ~entries:4096 ~memory_limit:1024 Workloads.fft in
  Alcotest.(check bool) "check misses rise" true
    (Report.check_miss_rate tight > Report.check_miss_rate free *. 1.5)

(* Table 8: direct-nohash is much worse than direct-with-offsetting, at
   every size; direct is competitive with set-associative. *)
let test_offsetting_beats_nohash () =
  List.iter
    (fun spec ->
      List.iter
        (fun entries ->
          let direct = utlb_run ~entries spec in
          let nohash =
            utlb_run ~entries ~assoc:Ni_cache.Direct_nohash spec
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s@%d nohash worse" spec.Workloads.name entries)
            true
            (Report.ni_miss_rate nohash > Report.ni_miss_rate direct +. 0.02))
        [ 1024; 16384 ])
    [ Workloads.water; Workloads.volrend; Workloads.fft; Workloads.barnes ]

let test_direct_competitive_with_assoc () =
  List.iter
    (fun spec ->
      let direct = utlb_run ~entries:4096 spec in
      let two_way = utlb_run ~entries:4096 ~assoc:Ni_cache.Two_way spec in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " direct close to 2-way")
        true
        (Report.ni_miss_rate direct
         <= Report.ni_miss_rate two_way +. 0.06))
    Workloads.all

(* Figure 7: at 16K entries compulsory misses dominate. *)
let test_compulsory_dominates_at_16k () =
  List.iter
    (fun spec ->
      let r = utlb_run ~entries:16384 spec in
      let comp, cap, conf = Report.miss_breakdown r in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " compulsory majority at 16K")
        true
        (comp > cap +. conf))
    Workloads.all

(* Figure 8: prefetching monotonically (within noise) cuts RADIX's miss
   rate, and the average lookup cost falls with aggressiveness. *)
let test_prefetch_reduces_radix_misses () =
  let model = Cost_model.default in
  let rates =
    List.map
      (fun p ->
        let r = utlb_run ~prefetch:p ~prepin:p ~entries:4096 Workloads.radix in
        (Report.ni_miss_rate r, Report.utlb_cost_us ~prefetch:p model r))
      [ 1; 4; 16; 32 ]
  in
  (match rates with
  | (m1, c1) :: rest ->
    let m32, c32 = List.nth rest 2 in
    Alcotest.(check bool) "big miss reduction" true (m32 < m1 /. 2.0);
    Alcotest.(check bool) "cost falls" true (c32 < c1 /. 1.5)
  | [] -> Alcotest.fail "no rates");
  List.fold_left
    (fun (pm, pc) (m, c) ->
      Alcotest.(check bool) "miss monotone" true (m <= pm +. 0.03);
      Alcotest.(check bool) "cost monotone" true (c <= pc +. 0.5);
      (m, c))
    (1.0, 1000.0) rates
  |> ignore

(* Table 7 / Section 6.5: 16-page pre-pinning cuts the amortised pin
   cost for every application; FFT's strided pattern makes it pay in
   unpins under a memory limit (the paper's one exception). *)
let test_prepin_amortisation () =
  let model = Cost_model.default in
  List.iter
    (fun spec ->
      let one = utlb_run ~prepin:1 ~memory_limit:4096 ~entries:8192 spec in
      let sixteen = utlb_run ~prepin:16 ~memory_limit:4096 ~entries:8192 spec in
      Alcotest.(check bool)
        (spec.Workloads.name ^ " prepin cuts amortised pin cost")
        true
        (Report.amortized_pin_us model sixteen
         < Report.amortized_pin_us model one))
    [ Workloads.lu; Workloads.radix; Workloads.raytrace; Workloads.water ]

let test_fft_prepin_penalty () =
  let model = Cost_model.default in
  let one = utlb_run ~prepin:1 ~memory_limit:4096 ~entries:8192 Workloads.fft in
  let sixteen =
    utlb_run ~prepin:16 ~memory_limit:4096 ~entries:8192 Workloads.fft
  in
  let total r =
    Report.amortized_pin_us model r +. Report.amortized_unpin_us model r
  in
  Alcotest.(check bool) "FFT: 16-page prepin is a net loss" true
    (total sixteen > total one)

(* Intr pays one interrupt per NI miss; UTLB pays none. *)
let test_interrupt_counts () =
  List.iter
    (fun spec ->
      let u = utlb_run ~entries:4096 spec in
      let i = intr_run ~entries:4096 spec in
      Alcotest.(check int) (spec.Workloads.name ^ " UTLB interrupts") 0
        u.Report.interrupts;
      Alcotest.(check int)
        (spec.Workloads.name ^ " one interrupt per page miss")
        i.Report.ni_page_misses i.Report.interrupts)
    [ Workloads.volrend; Workloads.water ]

let suite =
  [
    Alcotest.test_case "UTLB never unpins (infinite memory)" `Slow
      test_utlb_never_unpins_infinite_memory;
    Alcotest.test_case "NI misses match across mechanisms" `Slow
      test_ni_misses_match_across_mechanisms;
    Alcotest.test_case "cache-size sensitivity" `Slow test_cache_size_sensitivity;
    Alcotest.test_case "UTLB wins at small caches" `Slow
      test_utlb_wins_at_small_caches;
    Alcotest.test_case "FFT costlier than Barnes" `Slow
      test_fft_costlier_than_barnes;
    Alcotest.test_case "memory-limit unpins" `Slow test_memory_limit_unpins;
    Alcotest.test_case "FFT check misses rise under limit" `Slow
      test_fft_check_misses_rise_under_limit;
    Alcotest.test_case "offsetting beats nohash" `Slow test_offsetting_beats_nohash;
    Alcotest.test_case "direct competitive with assoc" `Slow
      test_direct_competitive_with_assoc;
    Alcotest.test_case "compulsory dominates at 16K" `Slow
      test_compulsory_dominates_at_16k;
    Alcotest.test_case "prefetch reduces RADIX misses" `Slow
      test_prefetch_reduces_radix_misses;
    Alcotest.test_case "prepin amortisation" `Slow test_prepin_amortisation;
    Alcotest.test_case "FFT prepin penalty" `Slow test_fft_prepin_penalty;
    Alcotest.test_case "interrupt counts" `Slow test_interrupt_counts;
  ]
