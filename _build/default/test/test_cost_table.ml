open Utlb_sim

let paper_pin = [ (1, 27.0); (2, 30.0); (4, 36.0); (8, 47.0); (16, 70.0); (32, 115.0) ]

let test_anchors_exact () =
  let t = Cost_table.create paper_pin in
  List.iter
    (fun (n, c) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "anchor %d" n) c
        (Cost_table.eval t n))
    paper_pin

let test_interpolation () =
  let t = Cost_table.create [ (1, 10.0); (3, 30.0) ] in
  Alcotest.(check (float 1e-9)) "midpoint" 20.0 (Cost_table.eval t 2)

let test_extrapolation () =
  let t = Cost_table.create [ (1, 10.0); (2, 20.0) ] in
  Alcotest.(check (float 1e-9)) "beyond last anchor" 40.0 (Cost_table.eval t 4)

let test_clamp_below () =
  let t = Cost_table.create [ (4, 10.0); (8, 20.0) ] in
  Alcotest.(check (float 1e-9)) "clamps below first anchor" 10.0
    (Cost_table.eval t 1)

let test_single_anchor () =
  let t = Cost_table.create [ (2, 5.0) ] in
  Alcotest.(check (float 1e-9)) "below" 5.0 (Cost_table.eval t 1);
  Alcotest.(check (float 1e-9)) "at" 5.0 (Cost_table.eval t 2);
  Alcotest.(check (float 1e-9)) "above" 5.0 (Cost_table.eval t 10)

let test_unsorted_input () =
  let t = Cost_table.create [ (8, 20.0); (1, 10.0); (4, 15.0) ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "anchors sorted"
    [ (1, 10.0); (4, 15.0); (8, 20.0) ]
    (Cost_table.anchors t)

let test_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Cost_table.create: empty anchor list") (fun () ->
      ignore (Cost_table.create []));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Cost_table.create: duplicate size") (fun () ->
      ignore (Cost_table.create [ (1, 1.0); (1, 2.0) ]));
  let t = Cost_table.create [ (1, 1.0) ] in
  Alcotest.check_raises "eval 0"
    (Invalid_argument "Cost_table.eval: size must be >= 1") (fun () ->
      ignore (Cost_table.eval t 0))

let test_linear_fit () =
  let t = Cost_table.linear_fit ~intercept:24.25 ~slope:2.75 in
  Alcotest.(check (float 1e-6)) "n=1" 27.0 (Cost_table.eval t 1);
  Alcotest.(check (float 1e-6)) "n=16" 68.25 (Cost_table.eval t 16)

let prop_monotone =
  QCheck.Test.make ~name:"eval is monotone on monotone anchors" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (a, b) ->
      let t = Cost_table.create paper_pin in
      let lo = min a b and hi = max a b in
      Cost_table.eval t lo <= Cost_table.eval t hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "anchors exact" `Quick test_anchors_exact;
    Alcotest.test_case "interpolation" `Quick test_interpolation;
    Alcotest.test_case "extrapolation" `Quick test_extrapolation;
    Alcotest.test_case "clamp below first" `Quick test_clamp_below;
    Alcotest.test_case "single anchor" `Quick test_single_anchor;
    Alcotest.test_case "unsorted input" `Quick test_unsorted_input;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    QCheck_alcotest.to_alcotest prop_monotone;
  ]
