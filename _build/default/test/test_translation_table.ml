open Utlb
module Pid = Utlb_mem.Pid

let garbage = 0

let make ?sram () =
  Translation_table.create ?sram ~garbage_frame:garbage ~pid:(Pid.of_int 1) ()

let test_install_lookup () =
  let t = make () in
  Alcotest.(check bool) "initially garbage" true
    (Translation_table.lookup t ~vpn:5 = Translation_table.Garbage);
  Translation_table.install t ~vpn:5 ~frame:42;
  Alcotest.(check bool) "frame" true
    (Translation_table.lookup t ~vpn:5 = Translation_table.Frame 42);
  Alcotest.(check int) "valid entries" 1 (Translation_table.valid_entries t)

let test_invalidate () =
  let t = make () in
  Translation_table.install t ~vpn:5 ~frame:42;
  Translation_table.invalidate t ~vpn:5;
  Alcotest.(check bool) "back to garbage" true
    (Translation_table.lookup t ~vpn:5 = Translation_table.Garbage);
  Alcotest.(check int) "no valid entries" 0 (Translation_table.valid_entries t);
  (* Invalidating an untouched page is harmless. *)
  Translation_table.invalidate t ~vpn:999;
  Alcotest.(check int) "still zero" 0 (Translation_table.valid_entries t)

let test_reinstall_counts_once () =
  let t = make () in
  Translation_table.install t ~vpn:5 ~frame:42;
  Translation_table.install t ~vpn:5 ~frame:43;
  Alcotest.(check int) "one valid entry" 1 (Translation_table.valid_entries t);
  Alcotest.(check bool) "latest frame" true
    (Translation_table.lookup t ~vpn:5 = Translation_table.Frame 43)

let test_second_level_growth () =
  let t = make () in
  Translation_table.install t ~vpn:0 ~frame:1;
  Translation_table.install t ~vpn:1 ~frame:2;
  Alcotest.(check int) "one table" 1 (Translation_table.second_level_tables t);
  Translation_table.install t ~vpn:(1024 * 3) ~frame:3;
  Alcotest.(check int) "two tables" 2 (Translation_table.second_level_tables t)

let test_swap_out_in () =
  let t = make () in
  Translation_table.install t ~vpn:10 ~frame:7;
  Alcotest.(check bool) "swap out" true
    (Translation_table.swap_out t ~dir_index:0 ~disk_block:55);
  Alcotest.(check int) "swapped count" 1 (Translation_table.swapped_tables t);
  (match Translation_table.lookup t ~vpn:10 with
  | Translation_table.Table_swapped block ->
    Alcotest.(check int) "disk block" 55 block
  | _ -> Alcotest.fail "expected Table_swapped");
  Alcotest.(check bool) "swap out twice fails" false
    (Translation_table.swap_out t ~dir_index:0 ~disk_block:56);
  Alcotest.(check bool) "swap in" true (Translation_table.swap_in t ~dir_index:0);
  Alcotest.(check bool) "entries preserved" true
    (Translation_table.lookup t ~vpn:10 = Translation_table.Frame 7);
  Alcotest.(check bool) "swap in twice fails" false
    (Translation_table.swap_in t ~dir_index:0)

let test_swap_out_empty_slot () =
  let t = make () in
  Alcotest.(check bool) "no table to swap" false
    (Translation_table.swap_out t ~dir_index:3 ~disk_block:1)

let test_install_into_swapped_rejected () =
  let t = make () in
  Translation_table.install t ~vpn:10 ~frame:7;
  ignore (Translation_table.swap_out t ~dir_index:0 ~disk_block:1);
  Alcotest.check_raises "install"
    (Invalid_argument "Translation_table.install: table is swapped out")
    (fun () -> Translation_table.install t ~vpn:11 ~frame:8)

let test_sram_directory () =
  let sram = Utlb_nic.Sram.create () in
  let t = make ~sram () in
  Translation_table.install t ~vpn:100 ~frame:5;
  (* The directory region exists on the NI and reflects residency. *)
  match Utlb_nic.Sram.region sram "utlb-dir-1" with
  | None -> Alcotest.fail "directory region missing"
  | Some region ->
    Alcotest.(check int) "1024 words" (1024 * 8) region.Utlb_nic.Sram.length;
    Alcotest.(check bool) "directory word set" true
      (Utlb_nic.Sram.read_word sram region 0 <> 0L)

let test_garbage_frame_install () =
  let t = make () in
  (* Installing the garbage frame itself must not count as valid. *)
  Translation_table.install t ~vpn:3 ~frame:garbage;
  Alcotest.(check int) "not valid" 0 (Translation_table.valid_entries t)

let prop_model =
  QCheck.Test.make ~name:"translation table agrees with a map model"
    ~count:150
    QCheck.(list (pair (int_bound 3000) (option (int_range 1 100000))))
    (fun ops ->
      let t = make () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (vpn, op) ->
          match op with
          | Some frame ->
            Translation_table.install t ~vpn ~frame;
            Hashtbl.replace model vpn frame
          | None ->
            Translation_table.invalidate t ~vpn;
            Hashtbl.remove model vpn)
        ops;
      Hashtbl.length model = Translation_table.valid_entries t
      && Hashtbl.fold
           (fun vpn frame ok ->
             ok
             && Translation_table.lookup t ~vpn = Translation_table.Frame frame)
           model true)

let suite =
  [
    Alcotest.test_case "install/lookup" `Quick test_install_lookup;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "reinstall counts once" `Quick test_reinstall_counts_once;
    Alcotest.test_case "second-level growth" `Quick test_second_level_growth;
    Alcotest.test_case "swap out/in" `Quick test_swap_out_in;
    Alcotest.test_case "swap out empty slot" `Quick test_swap_out_empty_slot;
    Alcotest.test_case "install into swapped" `Quick test_install_into_swapped_rejected;
    Alcotest.test_case "sram directory" `Quick test_sram_directory;
    Alcotest.test_case "garbage frame install" `Quick test_garbage_frame_install;
    QCheck_alcotest.to_alcotest prop_model;
  ]
