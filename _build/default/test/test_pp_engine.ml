open Utlb
module Pid = Utlb_mem.Pid

let pid0 = Pid.of_int 0

let pid1 = Pid.of_int 1

let make ?(budget = 16) ?(processes = 2) () =
  Pp_engine.create ~seed:7L
    {
      Pp_engine.sram_budget_entries = budget;
      processes;
      policy = Replacement.Lru;
    }

let test_budget_split () =
  let e = make ~budget:16 ~processes:2 () in
  Alcotest.(check int) "entries per process" 8
    (Pp_engine.table_entries_per_process e)

let test_basic_lookup () =
  let e = make () in
  let o = Pp_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:2 in
  Alcotest.(check bool) "check miss" true o.Pp_engine.check_miss;
  Alcotest.(check int) "pinned" 2 o.Pp_engine.pages_pinned;
  let o2 = Pp_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:2 in
  Alcotest.(check bool) "hit" false o2.Pp_engine.check_miss;
  Alcotest.(check int) "occupancy" 2 (Pp_engine.occupancy e pid0)

let test_static_partitioning_forces_unpins () =
  (* 8 entries per process: a 12-page working set evicts even though
     the other process's table sits empty — the Section 3.2 drawback. *)
  let e = make ~budget:16 ~processes:2 () in
  for vpn = 0 to 11 do
    ignore (Pp_engine.lookup e ~pid:pid0 ~vpn ~npages:1)
  done;
  let r = Pp_engine.report e ~label:"pp" in
  Alcotest.(check int) "table capped" 8 (Pp_engine.occupancy e pid0);
  Alcotest.(check int) "unpins forced" 4 r.Report.pages_unpinned;
  Alcotest.(check int) "other table untouched" 0 (Pp_engine.occupancy e pid1)

let test_too_many_processes_rejected () =
  let e = make ~budget:16 ~processes:1 () in
  ignore (Pp_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  Alcotest.check_raises "second process"
    (Invalid_argument "Pp_engine: more processes than allocated tables")
    (fun () -> ignore (Pp_engine.lookup e ~pid:pid1 ~vpn:0 ~npages:1))

let test_no_ni_misses_ever () =
  let e = make ~budget:64 ~processes:2 () in
  for vpn = 0 to 40 do
    ignore (Pp_engine.lookup e ~pid:pid0 ~vpn ~npages:1)
  done;
  let r = Pp_engine.report e ~label:"pp" in
  Alcotest.(check int) "direct table indexing never misses" 0
    r.Report.ni_page_misses

let test_vs_shared_on_fft () =
  (* The extension experiment's headline in miniature: on FFT, shared
     caching of host-resident tables avoids the unpins that per-process
     static tables force. *)
  let spec = Utlb_trace.Workloads.fft in
  let pp =
    Sim_driver.run_workload ~seed:42L
      (Sim_driver.Per_process Pp_engine.default_config)
      spec
  in
  let shared =
    Sim_driver.run_workload ~seed:42L
      (Sim_driver.Utlb Hier_engine.default_config)
      spec
  in
  Alcotest.(check bool) "per-process unpins" true
    (Report.unpin_rate pp > 0.1);
  Alcotest.(check (float 1e-9)) "shared never unpins" 0.0
    (Report.unpin_rate shared)

let suite =
  [
    Alcotest.test_case "budget split" `Quick test_budget_split;
    Alcotest.test_case "basic lookup" `Quick test_basic_lookup;
    Alcotest.test_case "static partitioning forces unpins" `Quick
      test_static_partitioning_forces_unpins;
    Alcotest.test_case "too many processes" `Quick test_too_many_processes_rejected;
    Alcotest.test_case "no NI misses" `Quick test_no_ni_misses_ever;
    Alcotest.test_case "per-process vs shared on FFT" `Slow test_vs_shared_on_fft;
  ]
