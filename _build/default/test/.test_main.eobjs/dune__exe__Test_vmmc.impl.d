test/test_vmmc.ml: Alcotest Bytes Char Cluster List Memory_image Message Printf QCheck QCheck_alcotest Utlb Utlb_net Utlb_vmmc
