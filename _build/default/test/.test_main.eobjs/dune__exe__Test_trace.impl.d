test/test_trace.ml: Alcotest Array Filename In_channel List Out_channel QCheck QCheck_alcotest Record Sys Trace Utlb_mem Utlb_trace
