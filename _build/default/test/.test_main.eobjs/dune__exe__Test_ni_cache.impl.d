test/test_ni_cache.ml: Alcotest List Ni_cache QCheck QCheck_alcotest Utlb Utlb_mem
