test/test_svm.ml: Alcotest Array Bytes Printf String Utlb Utlb_svm Utlb_vmmc
