test/test_translation_table.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Translation_table Utlb Utlb_mem Utlb_nic
