test/test_pattern.ml: Alcotest Fun Hashtbl Int64 List Option Pattern QCheck QCheck_alcotest Record Trace Utlb Utlb_mem Utlb_sim Utlb_trace
