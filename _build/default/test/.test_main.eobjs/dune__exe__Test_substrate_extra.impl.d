test/test_substrate_extra.ml: Alcotest Bytes Fabric Format Link List Packet String Utlb Utlb_mem Utlb_net Utlb_nic Utlb_sim Utlb_trace
