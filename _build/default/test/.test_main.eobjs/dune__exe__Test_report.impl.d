test/test_report.ml: Alcotest Cost_model Report Utlb
