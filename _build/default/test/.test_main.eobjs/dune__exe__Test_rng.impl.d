test/test_rng.ml: Alcotest Array Int64 QCheck QCheck_alcotest Rng Utlb_sim
