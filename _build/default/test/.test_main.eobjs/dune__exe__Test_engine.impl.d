test/test_engine.ml: Alcotest Engine List Time Utlb_sim
