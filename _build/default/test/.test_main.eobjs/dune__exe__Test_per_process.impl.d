test/test_per_process.ml: Alcotest Array Gen Int64 List Option Per_process QCheck QCheck_alcotest Replacement Utlb Utlb_mem Utlb_nic
