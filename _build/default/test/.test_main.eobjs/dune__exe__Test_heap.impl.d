test/test_heap.ml: Alcotest Heap Int List QCheck QCheck_alcotest Utlb_sim
