test/test_bitvec.ml: Alcotest Bitvec Hashtbl List QCheck QCheck_alcotest Utlb
