test/test_msg.ml: Alcotest Bytes Char QCheck QCheck_alcotest Utlb_msg Utlb_vmmc
