test/test_net.ml: Alcotest Array Bytes Channel Demux Fabric Link List Packet Printf Switch Utlb_net Utlb_sim
