test/test_analysis.ml: Alcotest Analysis Array List Record Trace Utlb Utlb_mem Utlb_trace Workloads
