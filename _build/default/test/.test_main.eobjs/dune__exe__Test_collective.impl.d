test/test_collective.ml: Alcotest Array Bytes Int64 Printf Utlb_msg Utlb_vmmc
