test/test_mem.ml: Addr Alcotest Array Frame_allocator Hashtbl Host_memory List Option Page_table Pid QCheck QCheck_alcotest Utlb_mem Vaddr
