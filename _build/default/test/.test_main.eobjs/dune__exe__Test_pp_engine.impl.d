test/test_pp_engine.ml: Alcotest Hier_engine Pp_engine Replacement Report Sim_driver Utlb Utlb_mem Utlb_trace
