test/test_hier_engine.ml: Alcotest Gen Hier_engine List Ni_cache Option QCheck QCheck_alcotest Report Translation_table Utlb Utlb_mem
