test/test_miss_classifier.ml: Alcotest Gen Hashtbl List Miss_classifier QCheck QCheck_alcotest Utlb Utlb_mem
