test/test_cost_model.ml: Alcotest Cost_model Float List Printf QCheck QCheck_alcotest Utlb
