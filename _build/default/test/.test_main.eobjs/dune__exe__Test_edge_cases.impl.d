test/test_edge_cases.ml: Alcotest Filename Gen Hier_engine In_channel Intr_engine List Ni_cache Out_channel Printf QCheck QCheck_alcotest Report Sim_driver Sys Utlb Utlb_mem Utlb_sim Utlb_trace
