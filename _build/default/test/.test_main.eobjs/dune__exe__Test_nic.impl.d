test/test_nic.ml: Alcotest Bytes Command_queue Dma Int64 Interrupt Io_bus List Mcp Nic Option Sram Utlb_mem Utlb_nic Utlb_sim
