test/test_lookup_tree.ml: Alcotest Hashtbl List Lookup_tree QCheck QCheck_alcotest Utlb
