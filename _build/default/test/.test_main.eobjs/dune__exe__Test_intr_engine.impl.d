test/test_intr_engine.ml: Alcotest Gen Intr_engine List Ni_cache QCheck QCheck_alcotest Report Utlb Utlb_mem
