test/test_stats.ml: Alcotest Counter Float Gen Histogram List QCheck QCheck_alcotest Summary Utlb_sim
