test/test_replacement.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Replacement Utlb Utlb_sim
