test/test_experiments.ml: Alcotest Cost_model Float Hashtbl Hier_engine Intr_engine List Ni_cache Printf Replacement Report Sim_driver Utlb Utlb_trace
