test/test_workloads.ml: Alcotest Array Float Hashtbl Int64 List Option Printf Record Trace Utlb_mem Utlb_trace Workloads
