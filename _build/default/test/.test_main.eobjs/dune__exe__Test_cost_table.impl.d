test/test_cost_table.ml: Alcotest Cost_table List Printf QCheck QCheck_alcotest Utlb_sim
