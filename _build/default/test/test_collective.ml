(* Tests for the collective operations over the message layer. *)

module Cluster = Utlb_vmmc.Cluster
module Msg = Utlb_msg.Msg
module Collective = Utlb_msg.Collective

let make_group ?(members = 4) () =
  (* Use a chain topology when more nodes than the default star. *)
  let config =
    if members <= 4 then Cluster.default_config
    else
      {
        Cluster.default_config with
        topology =
          Cluster.Chain { switches = (members + 1) / 2; hosts_per_switch = 2 };
      }
  in
  let cluster = Cluster.create ~config () in
  let endpoints =
    Array.init members (fun i ->
        Msg.create cluster ~node:(i mod Cluster.node_count cluster) ())
  in
  (cluster, Collective.group endpoints)

let test_broadcast_from_zero () =
  let _, g = make_group () in
  let payload = Bytes.of_string "broadcast-me" in
  let received = Collective.broadcast g ~root:0 payload in
  Array.iteri
    (fun rank b ->
      Alcotest.(check string)
        (Printf.sprintf "rank %d" rank)
        "broadcast-me" (Bytes.to_string b))
    received

let test_broadcast_from_nonzero_root () =
  let _, g = make_group () in
  let received = Collective.broadcast g ~root:2 (Bytes.of_string "from-2") in
  Array.iter
    (fun b -> Alcotest.(check string) "copy" "from-2" (Bytes.to_string b))
    received;
  (* A binomial tree over 4 ranks needs exactly 3 messages. *)
  Alcotest.(check int) "p-1 messages" 3 (Collective.messages_exchanged g)

let test_barrier_completes () =
  let cluster, g = make_group () in
  let before = Cluster.now_us cluster in
  Collective.barrier g;
  Alcotest.(check bool) "time advanced" true (Cluster.now_us cluster > before);
  (* Dissemination barrier: p messages per round, ceil(log2 4) = 2. *)
  Alcotest.(check int) "messages" 8 (Collective.messages_exchanged g)

let test_reduce_sum () =
  let _, g = make_group () in
  let encode v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    b
  in
  let decode b = Int64.to_int (Bytes.get_int64_le b 0) in
  let combine a b = encode (decode a + decode b) in
  let contributions = Array.init 4 (fun rank -> encode ((rank + 1) * 100)) in
  let total = Collective.reduce g ~root:0 ~combine contributions in
  Alcotest.(check int) "sum" 1000 (decode total);
  (* Reduction with a non-commutative combine still works (associative
     string concatenation, rank order preserved by the tree). *)
  let words = [| "a"; "b"; "c"; "d" |] in
  let concat x y = Bytes.cat x y in
  let result =
    Collective.reduce g ~root:0 ~combine:concat
      (Array.map Bytes.of_string words)
  in
  Alcotest.(check string) "ordered concat" "abcd" (Bytes.to_string result)

let test_all_to_all () =
  let _, g = make_group () in
  let p = Collective.size g in
  let data =
    Array.init p (fun i ->
        Array.init p (fun j -> Bytes.of_string (Printf.sprintf "%d->%d" i j)))
  in
  let received = Collective.all_to_all g data in
  for j = 0 to p - 1 do
    for i = 0 to p - 1 do
      Alcotest.(check string)
        (Printf.sprintf "j=%d i=%d" j i)
        (Printf.sprintf "%d->%d" i j)
        (Bytes.to_string received.(j).(i))
    done
  done

let test_eight_rank_group_on_chain () =
  let _, g = make_group ~members:8 () in
  let received = Collective.broadcast g ~root:0 (Bytes.of_string "wide") in
  Alcotest.(check int) "eight ranks" 8 (Array.length received);
  Array.iter
    (fun b -> Alcotest.(check string) "copy" "wide" (Bytes.to_string b))
    received

let test_validation () =
  let cluster = Cluster.create () in
  let solo = [| Msg.create cluster ~node:0 () |] in
  Alcotest.check_raises "tiny group"
    (Invalid_argument "Collective.group: need at least two members")
    (fun () -> ignore (Collective.group solo));
  let _, g = make_group () in
  Alcotest.check_raises "bad root"
    (Invalid_argument "Collective.broadcast: bad root") (fun () ->
      ignore (Collective.broadcast g ~root:9 Bytes.empty))

let suite =
  [
    Alcotest.test_case "broadcast from 0" `Quick test_broadcast_from_zero;
    Alcotest.test_case "broadcast from nonzero root" `Quick
      test_broadcast_from_nonzero_root;
    Alcotest.test_case "barrier" `Quick test_barrier_completes;
    Alcotest.test_case "reduce" `Quick test_reduce_sum;
    Alcotest.test_case "all-to-all" `Quick test_all_to_all;
    Alcotest.test_case "8 ranks on a chain" `Quick test_eight_rank_group_on_chain;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
