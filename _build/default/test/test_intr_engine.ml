open Utlb
module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory

let pid0 = Pid.of_int 0

let make ?(config = Intr_engine.default_config) () =
  Intr_engine.create ~seed:5L config

let small_cache entries =
  {
    Intr_engine.cache = { Ni_cache.entries; associativity = Ni_cache.Direct };
    memory_limit_pages = None;
  }

let test_miss_interrupts_and_pins () =
  let e = make () in
  let o = Intr_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:2 in
  Alcotest.(check int) "two misses" 2 o.Intr_engine.ni_misses;
  Alcotest.(check int) "one interrupt per miss" 2 o.Intr_engine.interrupts;
  Alcotest.(check int) "pinned" 2 o.Intr_engine.pages_pinned;
  let o2 = Intr_engine.lookup e ~pid:pid0 ~vpn:10 ~npages:2 in
  Alcotest.(check int) "hits need no interrupt" 0 o2.Intr_engine.interrupts

let test_eviction_unpins () =
  (* The defining behaviour: a cache eviction unpins the evicted page. *)
  let e = make ~config:(small_cache 4) () in
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  Alcotest.(check int) "pinned" 1 (Intr_engine.pinned_pages e pid0);
  (* vpn 4 conflicts with vpn 0 in a 4-entry direct cache. *)
  let o = Intr_engine.lookup e ~pid:pid0 ~vpn:4 ~npages:1 in
  Alcotest.(check int) "eviction unpinned" 1 o.Intr_engine.pages_unpinned;
  Alcotest.(check int) "pinned stays 1" 1 (Intr_engine.pinned_pages e pid0);
  Alcotest.(check int) "host agrees" 1
    (Host_memory.pinned_pages (Intr_engine.host e) pid0);
  (* Returning to vpn 0 is a fresh miss + interrupt + pin. *)
  let o2 = Intr_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1 in
  Alcotest.(check int) "re-interrupt" 1 o2.Intr_engine.interrupts;
  Alcotest.(check int) "re-pin" 1 o2.Intr_engine.pages_pinned

let test_memory_limit () =
  let config =
    {
      Intr_engine.cache =
        { Ni_cache.entries = 1024; associativity = Ni_cache.Direct };
      memory_limit_pages = Some 3;
    }
  in
  let e = make ~config () in
  for vpn = 0 to 9 do
    ignore (Intr_engine.lookup e ~pid:pid0 ~vpn ~npages:1)
  done;
  Alcotest.(check int) "limit respected" 3 (Intr_engine.pinned_pages e pid0);
  Alcotest.(check int) "host agrees" 3
    (Host_memory.pinned_pages (Intr_engine.host e) pid0)

let test_report () =
  let e = make ~config:(small_cache 4) () in
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:4 ~npages:1);
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:0 ~npages:1);
  let r = Intr_engine.report e ~label:"intr" in
  Alcotest.(check int) "lookups" 3 r.Report.lookups;
  Alcotest.(check int) "interrupts" 3 r.Report.interrupts;
  Alcotest.(check int) "no check misses ever" 0 r.Report.check_misses;
  Alcotest.(check int) "unpins" 2 r.Report.pages_unpinned

let prop_pinned_equals_cached =
  QCheck.Test.make
    ~name:"Intr invariant: pinned set = cached translations" ~count:60
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 50))
    (fun vpns ->
      let e = make ~config:(small_cache 16) () in
      List.iter (fun vpn -> ignore (Intr_engine.lookup e ~pid:pid0 ~vpn ~npages:1)) vpns;
      let cache = Intr_engine.cache e in
      Intr_engine.pinned_pages e pid0 = Ni_cache.valid_lines cache)

let suite =
  [
    Alcotest.test_case "miss interrupts and pins" `Quick
      test_miss_interrupts_and_pins;
    Alcotest.test_case "eviction unpins" `Quick test_eviction_unpins;
    Alcotest.test_case "memory limit" `Quick test_memory_limit;
    Alcotest.test_case "report" `Quick test_report;
    QCheck_alcotest.to_alcotest prop_pinned_equals_cached;
  ]
