(* Tests for the tagged message-passing layer over VMMC. *)

module Cluster = Utlb_vmmc.Cluster
module Msg = Utlb_msg.Msg

let pattern len salt = Bytes.init len (fun i -> Char.chr ((i * 11 + salt) land 0xff))

let with_endpoints ?window f =
  let cluster = Cluster.create () in
  let a = Msg.create cluster ~node:0 ?window () in
  let b = Msg.create cluster ~node:1 ?window () in
  Msg.connect a (Msg.address b);
  Msg.connect b (Msg.address a);
  f cluster a b

let test_small_message () =
  with_endpoints (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:7 (Bytes.of_string "hello");
      let tag, payload = Msg.recv_blocking b () in
      Alcotest.(check int) "tag" 7 tag;
      Alcotest.(check string) "payload" "hello" (Bytes.to_string payload))

let test_empty_message () =
  with_endpoints (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:1 Bytes.empty;
      let tag, payload = Msg.recv_blocking b () in
      Alcotest.(check int) "tag" 1 tag;
      Alcotest.(check int) "empty" 0 (Bytes.length payload))

let test_fragmented_message () =
  with_endpoints (fun _ a b ->
      (* Needs several 4064-byte fragments. *)
      let data = pattern 20000 3 in
      Msg.send a ~dest:(Msg.address b) ~tag:2 data;
      let _, payload = Msg.recv_blocking b ~tag:2 () in
      Alcotest.(check bytes) "reassembled" data payload;
      Alcotest.(check bool) "multiple fragments" true (Msg.fragments_sent a >= 5))

let test_ordering_and_tags () =
  with_endpoints (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:1 (Bytes.of_string "first");
      Msg.send a ~dest:(Msg.address b) ~tag:2 (Bytes.of_string "second");
      Msg.send a ~dest:(Msg.address b) ~tag:1 (Bytes.of_string "third");
      (* Tag filter picks the oldest match, leaving others queued. *)
      let _, p2 = Msg.recv_blocking b ~tag:2 () in
      Alcotest.(check string) "tag 2" "second" (Bytes.to_string p2);
      let _, p1 = Msg.recv_blocking b ~tag:1 () in
      Alcotest.(check string) "oldest tag 1" "first" (Bytes.to_string p1);
      let _, p3 = Msg.recv_blocking b ~tag:1 () in
      Alcotest.(check string) "then third" "third" (Bytes.to_string p3);
      Alcotest.(check int) "drained" 0 (Msg.pending b))

let test_bidirectional () =
  with_endpoints (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:0 (Bytes.of_string "ping");
      let _, ping = Msg.recv_blocking b () in
      Alcotest.(check string) "ping" "ping" (Bytes.to_string ping);
      Msg.send b ~dest:(Msg.address a) ~tag:0 (Bytes.of_string "pong");
      let _, pong = Msg.recv_blocking a () in
      Alcotest.(check string) "pong" "pong" (Bytes.to_string pong))

let test_flow_control_stalls_and_recovers () =
  (* Window of 2 slots: the third in-flight message must stall until the
     receiver consumes. We interleave consumption so the stall clears. *)
  with_endpoints ~window:2 (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:0 (pattern 1000 0);
      Msg.send a ~dest:(Msg.address b) ~tag:0 (pattern 1000 1);
      (* Window is now full; consume one to free a credit... *)
      ignore (Msg.recv_blocking b ());
      (* ...then the next send succeeds (it may stall internally first). *)
      Msg.send a ~dest:(Msg.address b) ~tag:0 (pattern 1000 2);
      ignore (Msg.recv_blocking b ());
      ignore (Msg.recv_blocking b ());
      Alcotest.(check int) "all three delivered" 3 (Msg.messages_received b))

let test_send_without_consumer_deadlocks () =
  with_endpoints ~window:1 (fun _ a b ->
      Msg.send a ~dest:(Msg.address b) ~tag:0 (pattern 100 0);
      (* The window is full and nobody consumes: the next send must
         raise rather than hang. *)
      (try
         Msg.send a ~dest:(Msg.address b) ~tag:0 (pattern 100 1);
         Alcotest.fail "expected Deadlock"
       with Msg.Deadlock _ -> ());
      (* The first message is still intact. *)
      let _, p = Msg.recv_blocking b () in
      Alcotest.(check bytes) "first survived" (pattern 100 0) p)

let test_oversized_message_rejected () =
  with_endpoints ~window:2 (fun _ a b ->
      try
        Msg.send a ~dest:(Msg.address b) ~tag:0 (Bytes.create 50000);
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let test_unconnected_send_rejected () =
  let cluster = Cluster.create () in
  let a = Msg.create cluster ~node:0 () in
  let b = Msg.create cluster ~node:1 () in
  try
    Msg.send a ~dest:(Msg.address b) ~tag:0 Bytes.empty;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_recv_blocking_deadlock () =
  with_endpoints (fun _ _a b ->
      try
        ignore (Msg.recv_blocking b ());
        Alcotest.fail "expected Deadlock"
      with Msg.Deadlock _ -> ())

let test_three_party () =
  let cluster = Cluster.create () in
  let a = Msg.create cluster ~node:0 () in
  let b = Msg.create cluster ~node:1 () in
  let c = Msg.create cluster ~node:2 () in
  Msg.connect a (Msg.address c);
  Msg.connect b (Msg.address c);
  Msg.send a ~dest:(Msg.address c) ~tag:10 (Bytes.of_string "from-a");
  Msg.send b ~dest:(Msg.address c) ~tag:11 (Bytes.of_string "from-b");
  let _, pa = Msg.recv_blocking c ~tag:10 () in
  let _, pb = Msg.recv_blocking c ~tag:11 () in
  Alcotest.(check string) "a's message" "from-a" (Bytes.to_string pa);
  Alcotest.(check string) "b's message" "from-b" (Bytes.to_string pb)

let prop_roundtrip =
  QCheck.Test.make ~name:"messages of any size roundtrip intact" ~count:10
    QCheck.(pair (int_range 0 30000) (int_bound 255))
    (fun (len, salt) ->
      let cluster = Cluster.create () in
      let a = Msg.create cluster ~node:0 () in
      let b = Msg.create cluster ~node:1 () in
      Msg.connect a (Msg.address b);
      let data = pattern len salt in
      Msg.send a ~dest:(Msg.address b) ~tag:0 data;
      let _, payload = Msg.recv_blocking b () in
      Bytes.equal data payload)

let suite =
  [
    Alcotest.test_case "small message" `Quick test_small_message;
    Alcotest.test_case "empty message" `Quick test_empty_message;
    Alcotest.test_case "fragmented message" `Quick test_fragmented_message;
    Alcotest.test_case "ordering and tags" `Quick test_ordering_and_tags;
    Alcotest.test_case "bidirectional" `Quick test_bidirectional;
    Alcotest.test_case "flow control" `Quick test_flow_control_stalls_and_recovers;
    Alcotest.test_case "deadlock detection on send" `Quick
      test_send_without_consumer_deadlocks;
    Alcotest.test_case "oversized message rejected" `Quick
      test_oversized_message_rejected;
    Alcotest.test_case "unconnected send rejected" `Quick
      test_unconnected_send_rejected;
    Alcotest.test_case "recv_blocking deadlock" `Quick test_recv_blocking_deadlock;
    Alcotest.test_case "three-party" `Quick test_three_party;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
