open Utlb_trace
module Pid = Utlb_mem.Pid

let rec_ ?(t = 0.0) ?(pid = 0) ?(npages = 1) vpn =
  Record.make ~time_us:t ~pid:(Pid.of_int pid) ~vpn ~npages ~op:Record.Send

let trace_of vpns =
  Trace.of_records
    (Array.of_list (List.mapi (fun i v -> rec_ ~t:(float_of_int i) v) vpns))

let test_all_cold () =
  let h = Analysis.reuse_distances (trace_of [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "total" 4 h.Analysis.total;
  Alcotest.(check int) "all cold" 4 h.Analysis.cold

let test_immediate_reuse () =
  (* 1 1 1: two reuses at distance 0. *)
  let h = Analysis.reuse_distances (trace_of [ 1; 1; 1 ]) in
  Alcotest.(check int) "cold" 1 h.Analysis.cold;
  let bound, count = h.Analysis.buckets.(0) in
  Alcotest.(check int) "bucket bound 1" 1 bound;
  Alcotest.(check int) "two zero-distance reuses" 2 count

let test_stack_distance () =
  (* 1 2 3 1: the reuse of 1 has seen 2 distinct pages since. *)
  let h = Analysis.reuse_distances (trace_of [ 1; 2; 3; 1 ]) in
  Alcotest.(check int) "cold" 3 h.Analysis.cold;
  (* distance 2 lands in bucket "< 4". *)
  let _, c4 = h.Analysis.buckets.(2) in
  Alcotest.(check int) "distance-2 reuse" 1 c4

let test_duplicates_dont_inflate_distance () =
  (* 1 2 2 2 1: page 1's reuse distance is 1 (only page 2 between). *)
  let h = Analysis.reuse_distances (trace_of [ 1; 2; 2; 2; 1 ]) in
  let _, c2 = h.Analysis.buckets.(1) in
  (* bucket "< 2" holds exactly distance-1 reuses *)
  Alcotest.(check int) "distance 1 once" 1 c2

let test_per_pid_separation () =
  (* Same vpn from different pids are distinct cache entries. *)
  let records =
    [ rec_ ~pid:0 5; rec_ ~t:1.0 ~pid:1 5; rec_ ~t:2.0 ~pid:0 5 ]
  in
  let h = Analysis.reuse_distances (Trace.of_records (Array.of_list records)) in
  Alcotest.(check int) "two cold" 2 h.Analysis.cold;
  (* pid 0's reuse saw only pid 1's access of a different (pid,page):
     distance 1. *)
  let _, c2 = h.Analysis.buckets.(1) in
  Alcotest.(check int) "cross-pid counted as distinct" 1 c2

let test_multi_page_records () =
  let t = Trace.of_records [| rec_ ~npages:3 10; rec_ ~t:1.0 ~npages:3 10 |] in
  let h = Analysis.reuse_distances t in
  Alcotest.(check int) "six accesses" 6 h.Analysis.total;
  Alcotest.(check int) "three cold" 3 h.Analysis.cold

let test_hit_ratio () =
  let h = Analysis.reuse_distances (trace_of [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ]) in
  (* 6 reuses at distance 2: hit with >= 4 entries, miss with 2. *)
  Alcotest.(check (float 1e-9)) "big cache" (6.0 /. 9.0)
    (Analysis.hit_ratio_at h ~entries:4);
  Alcotest.(check (float 1e-9)) "tiny cache" 0.0
    (Analysis.hit_ratio_at h ~entries:2)

let test_summary () =
  let t =
    Trace.of_records
      [| rec_ ~pid:0 ~npages:2 10; rec_ ~t:1.0 ~pid:1 20; rec_ ~t:2.0 ~pid:0 10 |]
  in
  let s = Analysis.summarize t in
  Alcotest.(check int) "lookups" 3 s.Analysis.lookups;
  Alcotest.(check int) "accesses" 4 s.Analysis.page_accesses;
  Alcotest.(check int) "footprint" 3 s.Analysis.footprint;
  Alcotest.(check (float 1e-6)) "mean npages" (4.0 /. 3.0) s.Analysis.mean_npages;
  Alcotest.(check (list (pair int int)))
    "npages histogram" [ (1, 2); (2, 1) ] s.Analysis.npages_histogram

let test_workload_hit_bound_matches_cache () =
  (* The fully-associative LRU bound must upper-bound the measured
     direct-mapped hit ratio at the same entry count. *)
  let spec = Workloads.volrend in
  let trace = spec.Workloads.generate ~seed:42L in
  let h = Analysis.reuse_distances trace in
  let bound = Analysis.hit_ratio_at h ~entries:4096 in
  let r =
    Utlb.Sim_driver.run ~seed:42L
      (Utlb.Sim_driver.Utlb
         {
           Utlb.Hier_engine.default_config with
           cache = { Utlb.Ni_cache.entries = 4096; associativity = Utlb.Ni_cache.Direct };
         })
      trace
  in
  let measured_hit =
    1.0
    -. float_of_int r.Utlb.Report.ni_page_misses
       /. float_of_int r.Utlb.Report.ni_page_accesses
  in
  Alcotest.(check bool) "LRU bound dominates direct-mapped" true
    (bound +. 0.02 >= measured_hit)

let suite =
  [
    Alcotest.test_case "all cold" `Quick test_all_cold;
    Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse;
    Alcotest.test_case "stack distance" `Quick test_stack_distance;
    Alcotest.test_case "duplicates don't inflate" `Quick
      test_duplicates_dont_inflate_distance;
    Alcotest.test_case "per-pid separation" `Quick test_per_pid_separation;
    Alcotest.test_case "multi-page records" `Quick test_multi_page_records;
    Alcotest.test_case "hit ratio" `Quick test_hit_ratio;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "LRU bound vs measured cache" `Slow
      test_workload_hit_bound_matches_cache;
  ]
