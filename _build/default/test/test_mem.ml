(* Tests for the utlb_mem library: addresses, page tables, frame
   allocation, and the host pin/unpin facility. *)

open Utlb_mem

let test_addr_pages () =
  let open Addr in
  Alcotest.(check int) "page size" 4096 page_size;
  let va = Vaddr.of_page ~offset:100 5 in
  Alcotest.(check int) "page" 5 (Vaddr.page va);
  Alcotest.(check int) "offset" 100 (Vaddr.offset va);
  Alcotest.(check int) "roundtrip" ((5 * 4096) + 100) (Vaddr.to_int va)

let test_addr_spanned () =
  let open Addr in
  let at off = Vaddr.of_int off in
  Alcotest.(check int) "zero bytes" 0 (pages_spanned (at 0) ~bytes:0);
  Alcotest.(check int) "within page" 1 (pages_spanned (at 100) ~bytes:100);
  Alcotest.(check int) "exact page" 1 (pages_spanned (at 0) ~bytes:4096);
  Alcotest.(check int) "crosses one boundary" 2
    (pages_spanned (at 4000) ~bytes:200);
  Alcotest.(check int) "unaligned 2 pages" 3
    (pages_spanned (at 4095) ~bytes:4098)

let test_addr_invalid () =
  Alcotest.check_raises "negative vaddr"
    (Invalid_argument "Vaddr.of_int: negative address") (fun () ->
      ignore (Addr.Vaddr.of_int (-1)));
  Alcotest.check_raises "bad offset"
    (Invalid_argument "Vaddr.of_page: offset outside page") (fun () ->
      ignore (Addr.Vaddr.of_page ~offset:4096 0))

let test_page_table_basic () =
  let pt = Page_table.create () in
  Alcotest.(check (option int)) "miss" None
    (Option.map (fun (p : Page_table.pte) -> p.frame) (Page_table.find pt 7));
  Page_table.set pt 7 ~frame:42;
  (match Page_table.find pt 7 with
  | Some pte ->
    Alcotest.(check int) "frame" 42 pte.Page_table.frame;
    Alcotest.(check int) "unpinned" 0 pte.Page_table.pinned
  | None -> Alcotest.fail "entry missing");
  Alcotest.(check int) "resident" 1 (Page_table.resident_count pt);
  Alcotest.(check int) "one table" 1 (Page_table.second_level_tables pt)

let test_page_table_lazy_tables () =
  let pt = Page_table.create () in
  Page_table.set pt 0 ~frame:1;
  Page_table.set pt 1024 ~frame:2;
  Page_table.set pt 1025 ~frame:3;
  Alcotest.(check int) "two second-level tables" 2
    (Page_table.second_level_tables pt)

let test_page_table_pinning () =
  let pt = Page_table.create () in
  Page_table.set pt 5 ~frame:9;
  Alcotest.(check int) "pin" 1 (Page_table.adjust_pin pt 5 ~delta:1);
  Alcotest.(check int) "pin again" 2 (Page_table.adjust_pin pt 5 ~delta:1);
  Alcotest.check_raises "remove pinned"
    (Invalid_argument "Page_table.remove: page is pinned") (fun () ->
      Page_table.remove pt 5);
  Alcotest.(check int) "unpin" 0 (Page_table.adjust_pin pt 5 ~delta:(-2));
  Alcotest.check_raises "negative pin"
    (Invalid_argument "Page_table.adjust_pin: negative pin count") (fun () ->
      ignore (Page_table.adjust_pin pt 5 ~delta:(-1)));
  Page_table.remove pt 5;
  Alcotest.(check int) "removed" 0 (Page_table.resident_count pt)

let test_page_table_iter () =
  let pt = Page_table.create () in
  List.iter (fun v -> Page_table.set pt v ~frame:(v * 2)) [ 3; 1; 2000 ];
  let seen = ref [] in
  Page_table.iter pt (fun vpn pte -> seen := (vpn, pte.Page_table.frame) :: !seen);
  Alcotest.(check (list (pair int int)))
    "ascending iteration"
    [ (1, 2); (3, 6); (2000, 4000) ]
    (List.rev !seen)

let test_frame_allocator () =
  let fa = Frame_allocator.create ~frames:4 in
  Alcotest.(check int) "garbage is 0" 0 (Frame_allocator.garbage_frame fa);
  Alcotest.(check int) "free" 3 (Frame_allocator.free_count fa);
  let a = Option.get (Frame_allocator.alloc fa) in
  let b = Option.get (Frame_allocator.alloc fa) in
  let c = Option.get (Frame_allocator.alloc fa) in
  Alcotest.(check bool) "distinct" true (a <> b && b <> c && a <> c);
  Alcotest.(check (option int)) "exhausted" None (Frame_allocator.alloc fa);
  Frame_allocator.free fa b;
  Alcotest.(check (option int)) "reuses freed" (Some b)
    (Frame_allocator.alloc fa)

let test_frame_allocator_errors () =
  let fa = Frame_allocator.create ~frames:4 in
  Alcotest.check_raises "free garbage"
    (Invalid_argument "Frame_allocator.free: garbage frame") (fun () ->
      Frame_allocator.free fa 0);
  Alcotest.check_raises "double free"
    (Invalid_argument "Frame_allocator.free: double free") (fun () ->
      Frame_allocator.free fa 2)

let pid0 = Pid.of_int 0

let pid1 = Pid.of_int 1

let test_host_pin_unpin () =
  let host = Host_memory.create ~frames:64 () in
  Host_memory.add_process host pid0;
  (match Host_memory.pin host pid0 ~vpn:10 ~count:3 with
  | Ok frames ->
    Alcotest.(check int) "three frames" 3 (Array.length frames);
    Alcotest.(check bool) "pinned" true (Host_memory.is_pinned host pid0 ~vpn:11)
  | Error `Out_of_memory -> Alcotest.fail "unexpected OOM");
  Alcotest.(check int) "pinned pages" 3 (Host_memory.pinned_pages host pid0);
  Alcotest.(check int) "one ioctl" 1 (Host_memory.pin_calls host);
  Host_memory.unpin host pid0 ~vpn:10 ~count:3;
  Alcotest.(check int) "unpinned" 0 (Host_memory.pinned_pages host pid0);
  Alcotest.(check bool) "still resident" true
    (Host_memory.translate host pid0 ~vpn:10 <> None)

let test_host_pin_refcount () =
  let host = Host_memory.create ~frames:64 () in
  Host_memory.add_process host pid0;
  ignore (Host_memory.pin host pid0 ~vpn:5 ~count:1);
  ignore (Host_memory.pin host pid0 ~vpn:5 ~count:1);
  Alcotest.(check int) "refcount 2" 2 (Host_memory.pin_count host pid0 ~vpn:5);
  Host_memory.unpin host pid0 ~vpn:5 ~count:1;
  Alcotest.(check bool) "still pinned" true
    (Host_memory.is_pinned host pid0 ~vpn:5);
  Host_memory.unpin host pid0 ~vpn:5 ~count:1;
  Alcotest.(check bool) "now unpinned" false
    (Host_memory.is_pinned host pid0 ~vpn:5)

let test_host_unpin_unpinned () =
  let host = Host_memory.create ~frames:64 () in
  Host_memory.add_process host pid0;
  Alcotest.check_raises "unpin unpinned"
    (Invalid_argument "Host_memory.unpin: page not pinned") (fun () ->
      Host_memory.unpin host pid0 ~vpn:9 ~count:1)

let test_host_eviction () =
  (* 8 frames: garbage + 7 usable. Touch 7 pages, then more: the early
     unpinned ones get evicted to make room. *)
  let host = Host_memory.create ~frames:8 () in
  Host_memory.add_process host pid0;
  for vpn = 0 to 6 do
    match Host_memory.ensure_resident host pid0 ~vpn with
    | Ok _ -> ()
    | Error `Out_of_memory -> Alcotest.fail "should fit"
  done;
  (match Host_memory.ensure_resident host pid0 ~vpn:100 with
  | Ok _ -> ()
  | Error `Out_of_memory -> Alcotest.fail "eviction should make room");
  Alcotest.(check bool) "evicted something" true (Host_memory.evictions host > 0)

let test_host_oom_when_all_pinned () =
  let host = Host_memory.create ~frames:4 () in
  Host_memory.add_process host pid0;
  (match Host_memory.pin host pid0 ~vpn:0 ~count:3 with
  | Ok _ -> ()
  | Error `Out_of_memory -> Alcotest.fail "should fit");
  (match Host_memory.pin host pid0 ~vpn:50 ~count:1 with
  | Ok _ -> Alcotest.fail "expected OOM: every frame pinned"
  | Error `Out_of_memory -> ());
  (* The failed call must not leave partial pins behind. *)
  Alcotest.(check int) "no partial pins" 3 (Host_memory.pinned_pages host pid0)

let test_host_pin_rollback () =
  (* Pin range that only partially fits: nothing may remain pinned. *)
  let host = Host_memory.create ~frames:4 () in
  Host_memory.add_process host pid0;
  ignore (Host_memory.pin host pid0 ~vpn:0 ~count:2);
  (match Host_memory.pin host pid0 ~vpn:10 ~count:3 with
  | Ok _ -> Alcotest.fail "expected OOM"
  | Error `Out_of_memory -> ());
  Alcotest.(check int) "rolled back" 2 (Host_memory.pinned_pages host pid0)

let test_host_process_isolation () =
  let host = Host_memory.create ~frames:64 () in
  Host_memory.add_process host pid0;
  Host_memory.add_process host pid1;
  ignore (Host_memory.pin host pid0 ~vpn:7 ~count:1);
  ignore (Host_memory.pin host pid1 ~vpn:7 ~count:1);
  let f0 = Option.get (Host_memory.translate host pid0 ~vpn:7) in
  let f1 = Option.get (Host_memory.translate host pid1 ~vpn:7) in
  Alcotest.(check bool) "same vpn, different frames" true (f0 <> f1)

let test_host_unknown_process () =
  let host = Host_memory.create ~frames:8 () in
  Alcotest.check_raises "unknown process"
    (Invalid_argument "Host_memory: unknown process") (fun () ->
      ignore (Host_memory.translate host pid0 ~vpn:0))

let prop_pin_unpin_balance =
  QCheck.Test.make ~name:"pin/unpin always balances pinned_pages" ~count:100
    QCheck.(list (pair (int_bound 30) (int_range 1 4)))
    (fun ops ->
      let host = Host_memory.create ~frames:256 () in
      Host_memory.add_process host pid0;
      let pinned = Hashtbl.create 16 in
      List.iter
        (fun (vpn, count) ->
          match Host_memory.pin host pid0 ~vpn ~count with
          | Ok _ ->
            for v = vpn to vpn + count - 1 do
              Hashtbl.replace pinned v
                (1 + Option.value ~default:0 (Hashtbl.find_opt pinned v))
            done
          | Error `Out_of_memory -> ())
        ops;
      Hashtbl.iter
        (fun vpn _ ->
          let n = Hashtbl.find pinned vpn in
          for _ = 1 to n do
            Host_memory.unpin host pid0 ~vpn ~count:1
          done)
        pinned;
      Host_memory.pinned_pages host pid0 = 0)

let suite =
  [
    Alcotest.test_case "addr pages" `Quick test_addr_pages;
    Alcotest.test_case "addr pages_spanned" `Quick test_addr_spanned;
    Alcotest.test_case "addr invalid" `Quick test_addr_invalid;
    Alcotest.test_case "page table basic" `Quick test_page_table_basic;
    Alcotest.test_case "page table lazy tables" `Quick test_page_table_lazy_tables;
    Alcotest.test_case "page table pinning" `Quick test_page_table_pinning;
    Alcotest.test_case "page table iter" `Quick test_page_table_iter;
    Alcotest.test_case "frame allocator" `Quick test_frame_allocator;
    Alcotest.test_case "frame allocator errors" `Quick test_frame_allocator_errors;
    Alcotest.test_case "host pin/unpin" `Quick test_host_pin_unpin;
    Alcotest.test_case "host pin refcount" `Quick test_host_pin_refcount;
    Alcotest.test_case "host unpin unpinned" `Quick test_host_unpin_unpinned;
    Alcotest.test_case "host eviction" `Quick test_host_eviction;
    Alcotest.test_case "host OOM all pinned" `Quick test_host_oom_when_all_pinned;
    Alcotest.test_case "host pin rollback" `Quick test_host_pin_rollback;
    Alcotest.test_case "host process isolation" `Quick test_host_process_isolation;
    Alcotest.test_case "host unknown process" `Quick test_host_unknown_process;
    QCheck_alcotest.to_alcotest prop_pin_unpin_balance;
  ]
