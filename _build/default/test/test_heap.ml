open Utlb_sim

let int_heap () = Heap.create ~cmp:Int.compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 8; 9 ]
    (Heap.to_sorted_list h);
  (* to_sorted_list is non-destructive *)
  Alcotest.(check int) "length preserved" 6 (Heap.length h)

let test_fifo_ties () =
  (* Equal keys must pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  Heap.push h (1, "first");
  Heap.push h (1, "second");
  Heap.push h (0, "zero");
  Heap.push h (1, "third");
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "fifo ties"
    [ "zero"; "first"; "second"; "third" ]
    order

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "min first" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 20;
  Alcotest.(check (option int)) "new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "then 10" (Some 10) (Heap.pop h);
  Alcotest.(check (option int)) "then 20" (Some 20) (Heap.pop h)

let prop_heapsort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let drained = Heap.to_sorted_list h in
      drained = List.stable_sort Int.compare xs)

let prop_length =
  QCheck.Test.make ~name:"length tracks pushes and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let n = List.length xs in
      let popped = ref 0 in
      while Heap.pop h <> None do
        incr popped
      done;
      !popped = n && Heap.is_empty h)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo tie-breaking" `Quick test_fifo_ties;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heapsort;
    QCheck_alcotest.to_alcotest prop_length;
  ]
