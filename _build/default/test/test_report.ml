open Utlb

let sample =
  {
    (Report.empty ~label:"sample") with
    Report.lookups = 1000;
    check_misses = 250;
    ni_miss_lookups = 400;
    ni_page_accesses = 1200;
    ni_page_misses = 450;
    pin_calls = 250;
    pages_pinned = 500;
    unpin_calls = 100;
    pages_unpinned = 100;
    compulsory = 300;
    capacity = 100;
    conflict = 50;
  }

let test_rates () =
  Alcotest.(check (float 1e-9)) "check" 0.25 (Report.check_miss_rate sample);
  Alcotest.(check (float 1e-9)) "ni" 0.40 (Report.ni_miss_rate sample);
  Alcotest.(check (float 1e-9)) "unpin" 0.10 (Report.unpin_rate sample);
  Alcotest.(check (float 1e-9)) "pages/call" 2.0 (Report.pin_pages_per_call sample)

let test_empty_rates () =
  let e = Report.empty ~label:"e" in
  Alcotest.(check (float 1e-9)) "check" 0.0 (Report.check_miss_rate e);
  Alcotest.(check (float 1e-9)) "pages/call defaults to 1" 1.0
    (Report.pin_pages_per_call e);
  Alcotest.(check (float 1e-9)) "amortized pin" 0.0
    (Report.amortized_pin_us Cost_model.default e)

let test_breakdown_sums_to_miss_rate () =
  let comp, cap, conf = Report.miss_breakdown sample in
  Alcotest.(check (float 1e-9)) "sums" (Report.ni_miss_rate sample)
    (comp +. cap +. conf);
  (* Shares proportional to the page-miss classification. *)
  Alcotest.(check (float 1e-9)) "compulsory share" (0.4 *. 300.0 /. 450.0) comp

let test_costs_consistent_with_model () =
  let m = Cost_model.default in
  let expected =
    Cost_model.utlb_lookup_us m ~prefetch:1 (Report.rates sample)
  in
  Alcotest.(check (float 1e-9)) "utlb cost" expected
    (Report.utlb_cost_us m sample);
  let expected_intr = Cost_model.intr_lookup_us m (Report.rates sample) in
  Alcotest.(check (float 1e-9)) "intr cost" expected_intr
    (Report.intr_cost_us m sample)

let test_amortized () =
  let m = Cost_model.default in
  (* 250 calls of 2 pages: pin_us(2)=30; 250*30/1000 = 7.5 us/lookup. *)
  Alcotest.(check (float 1e-9)) "amortized pin" 7.5
    (Report.amortized_pin_us m sample);
  (* 100 single-page unpins at 25us over 1000 lookups. *)
  Alcotest.(check (float 1e-9)) "amortized unpin" 2.5
    (Report.amortized_unpin_us m sample)

let suite =
  [
    Alcotest.test_case "rates" `Quick test_rates;
    Alcotest.test_case "empty rates" `Quick test_empty_rates;
    Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums_to_miss_rate;
    Alcotest.test_case "costs consistent" `Quick test_costs_consistent_with_model;
    Alcotest.test_case "amortized costs" `Quick test_amortized;
  ]
