open Utlb

let test_basic () =
  let t = Lookup_tree.create () in
  Alcotest.(check (option int)) "miss" None (Lookup_tree.find t 5);
  Lookup_tree.set t 5 ~index:17;
  Alcotest.(check (option int)) "hit" (Some 17) (Lookup_tree.find t 5);
  Lookup_tree.set t 5 ~index:23;
  Alcotest.(check (option int)) "overwrite" (Some 23) (Lookup_tree.find t 5);
  Alcotest.(check int) "entries counts once" 1 (Lookup_tree.entries t);
  Lookup_tree.remove t 5;
  Alcotest.(check (option int)) "removed" None (Lookup_tree.find t 5);
  Lookup_tree.remove t 5;
  Alcotest.(check int) "idempotent remove" 0 (Lookup_tree.entries t)

let test_two_level_split () =
  let t = Lookup_tree.create () in
  (* Same second-level index, different directories. *)
  Lookup_tree.set t 5 ~index:1;
  Lookup_tree.set t (1024 + 5) ~index:2;
  Alcotest.(check (option int)) "dir 0" (Some 1) (Lookup_tree.find t 5);
  Alcotest.(check (option int)) "dir 1" (Some 2) (Lookup_tree.find t 1029)

let test_bounds () =
  let t = Lookup_tree.create () in
  Lookup_tree.set t Lookup_tree.max_vpn ~index:9;
  Alcotest.(check (option int)) "max vpn" (Some 9)
    (Lookup_tree.find t Lookup_tree.max_vpn);
  Alcotest.check_raises "beyond max"
    (Invalid_argument "Lookup_tree: vpn out of range") (fun () ->
      ignore (Lookup_tree.find t (Lookup_tree.max_vpn + 1)));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Lookup_tree.set: negative index") (fun () ->
      Lookup_tree.set t 0 ~index:(-1))

let test_iter_ascending () =
  let t = Lookup_tree.create () in
  List.iter (fun (v, i) -> Lookup_tree.set t v ~index:i)
    [ (2000, 3); (5, 1); (100, 2) ];
  let seen = ref [] in
  Lookup_tree.iter t (fun vpn index -> seen := (vpn, index) :: !seen);
  Alcotest.(check (list (pair int int)))
    "ascending" [ (5, 1); (100, 2); (2000, 3) ] (List.rev !seen)

let test_cost_property () =
  Alcotest.(check int) "two memory references" 2 Lookup_tree.memory_references

let prop_model =
  QCheck.Test.make ~name:"lookup tree agrees with a map model" ~count:200
    QCheck.(list (pair (int_bound 5000) (option (int_bound 8191))))
    (fun ops ->
      let t = Lookup_tree.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (vpn, op) ->
          match op with
          | Some index ->
            Lookup_tree.set t vpn ~index;
            Hashtbl.replace model vpn index
          | None ->
            Lookup_tree.remove t vpn;
            Hashtbl.remove model vpn)
        ops;
      Hashtbl.length model = Lookup_tree.entries t
      && Hashtbl.fold
           (fun vpn index ok -> ok && Lookup_tree.find t vpn = Some index)
           model true)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "two-level split" `Quick test_two_level_split;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "iter ascending" `Quick test_iter_ascending;
    Alcotest.test_case "lookup cost" `Quick test_cost_property;
    QCheck_alcotest.to_alcotest prop_model;
  ]
