open Utlb
module Pid = Utlb_mem.Pid

let pid0 = Pid.of_int 0

let pid1 = Pid.of_int 1

let test_compulsory () =
  let t = Miss_classifier.create ~capacity:4 in
  Alcotest.(check string) "first ref" "compulsory"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:1));
  Alcotest.(check int) "counter" 1 (Miss_classifier.compulsory t)

let test_per_pid_compulsory () =
  let t = Miss_classifier.create ~capacity:4 in
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:1);
  Alcotest.(check string) "same vpn, new pid is compulsory" "compulsory"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid1 ~vpn:1))

let test_capacity () =
  (* Capacity 2: touch 3 pages round-robin; revisits miss even fully
     associative, so they are capacity misses. *)
  let t = Miss_classifier.create ~capacity:2 in
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:1);
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:2);
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:3);
  (* vpn 1 was evicted from the 2-entry shadow by vpn 3. *)
  Alcotest.(check string) "revisit" "capacity"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:1));
  Alcotest.(check int) "capacity counter" 1 (Miss_classifier.capacity_misses t)

let test_conflict () =
  (* Shadow holds it (fully associative) but the real cache missed:
     conflict. *)
  let t = Miss_classifier.create ~capacity:8 in
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:1);
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:2);
  Alcotest.(check string) "still in shadow" "conflict"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:1));
  Alcotest.(check int) "conflict counter" 1 (Miss_classifier.conflict t)

let test_hits_refresh_lru () =
  let t = Miss_classifier.create ~capacity:2 in
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:1);
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:2);
  (* A hit on 1 makes 2 the shadow LRU. *)
  Miss_classifier.note_hit t ~pid:pid0 ~vpn:1;
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:3);
  (* 2 was evicted, 1 kept: a miss on 1 is conflict, on 2 capacity. *)
  Alcotest.(check string) "kept page" "conflict"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:1));
  Alcotest.(check string) "evicted page" "capacity"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:2))

let test_invalidate_removes_from_shadow () =
  let t = Miss_classifier.create ~capacity:8 in
  ignore (Miss_classifier.classify t ~pid:pid0 ~vpn:1);
  Miss_classifier.note_invalidate t ~pid:pid0 ~vpn:1;
  (* Not in the shadow anymore and the shadow has spare room: a miss on
     it counts as capacity (it was seen before but not cached). *)
  Alcotest.(check string) "after invalidate" "capacity"
    (Miss_classifier.kind_name (Miss_classifier.classify t ~pid:pid0 ~vpn:1))

let test_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Miss_classifier.create: capacity must be positive")
    (fun () -> ignore (Miss_classifier.create ~capacity:0))

let prop_counts_sum =
  QCheck.Test.make ~name:"3C counters sum to classify calls" ~count:100
    QCheck.(list (pair (int_bound 1) (int_bound 30)))
    (fun accesses ->
      let t = Miss_classifier.create ~capacity:8 in
      List.iter
        (fun (p, vpn) ->
          ignore (Miss_classifier.classify t ~pid:(Pid.of_int p) ~vpn))
        accesses;
      Miss_classifier.compulsory t + Miss_classifier.capacity_misses t
      + Miss_classifier.conflict t
      = List.length accesses)

let prop_first_touch_compulsory =
  QCheck.Test.make ~name:"first touch of a page is always compulsory"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 20))
    (fun vpns ->
      let t = Miss_classifier.create ~capacity:4 in
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun vpn ->
          let kind = Miss_classifier.classify t ~pid:pid0 ~vpn in
          let first = not (Hashtbl.mem seen vpn) in
          Hashtbl.replace seen vpn ();
          if first then kind = Miss_classifier.Compulsory
          else kind <> Miss_classifier.Compulsory)
        vpns)

let suite =
  [
    Alcotest.test_case "compulsory" `Quick test_compulsory;
    Alcotest.test_case "per-pid compulsory" `Quick test_per_pid_compulsory;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "conflict" `Quick test_conflict;
    Alcotest.test_case "hits refresh shadow LRU" `Quick test_hits_refresh_lru;
    Alcotest.test_case "invalidate" `Quick test_invalidate_removes_from_shadow;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    QCheck_alcotest.to_alcotest prop_counts_sum;
    QCheck_alcotest.to_alcotest prop_first_touch_compulsory;
  ]
