(* Validates the cost model against the numbers printed in the paper:
   Table 1/2 anchors and the worked Table 6 cells that the Section 6.2
   equations must reproduce. *)

open Utlb

let m = Cost_model.default

let test_table1_anchors () =
  List.iter
    (fun (n, pin, unpin) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "pin %d" n) pin
        (Cost_model.pin_us m ~pages:n);
      Alcotest.(check (float 1e-9)) (Printf.sprintf "unpin %d" n) unpin
        (Cost_model.unpin_us m ~pages:n))
    [ (1, 27.0, 25.0); (2, 30.0, 30.0); (4, 36.0, 36.0); (8, 47.0, 50.0);
      (16, 70.0, 80.0); (32, 115.0, 139.0) ]

let test_table2_anchors () =
  List.iter
    (fun (n, dma, miss) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "dma %d" n) dma
        (Cost_model.dma_us m ~entries:n);
      Alcotest.(check (float 1e-9)) (Printf.sprintf "miss %d" n) miss
        (Cost_model.ni_miss_us m ~entries:n))
    [ (1, 1.5, 1.8); (2, 1.6, 1.9); (4, 1.6, 1.9); (8, 1.9, 2.3);
      (16, 2.1, 2.8); (32, 2.5, 3.2) ]

let test_constants () =
  Alcotest.(check (float 1e-9)) "NI hit" 0.8 (Cost_model.ni_hit_us m);
  Alcotest.(check (float 1e-9)) "user check" 0.5 (Cost_model.user_check_us m);
  Alcotest.(check (float 1e-9)) "interrupt" 10.0 (Cost_model.intr_us m)

(* Paper Table 6, Barnes at 1K entries: UTLB 2.6 us, Intr 4.9 us, using
   the Table 4 rates (check 0.04, NI 0.10, Intr unpins 0.09). *)
let test_table6_barnes_1k () =
  let utlb_rates =
    { Cost_model.check_miss = 0.04; ni_miss = 0.10; unpin = 0.0; pin_pages = 1.0 }
  in
  Alcotest.(check (float 0.1)) "UTLB Barnes 1K" 2.6
    (Cost_model.utlb_lookup_us m ~prefetch:1 utlb_rates);
  let intr_rates =
    { Cost_model.check_miss = 0.0; ni_miss = 0.10; unpin = 0.09; pin_pages = 1.0 }
  in
  Alcotest.(check (float 0.2)) "Intr Barnes 1K" 4.9
    (Cost_model.intr_lookup_us m intr_rates)

(* Paper Table 6, FFT at 1K entries: UTLB 9.0 us, Intr 21.7 us, using
   Table 4's rates (check 0.25, NI 0.50, Intr unpins 0.49). *)
let test_table6_fft_1k () =
  let utlb_rates =
    { Cost_model.check_miss = 0.25; ni_miss = 0.50; unpin = 0.0; pin_pages = 1.0 }
  in
  Alcotest.(check (float 0.1)) "UTLB FFT 1K" 9.0
    (Cost_model.utlb_lookup_us m ~prefetch:1 utlb_rates);
  let intr_rates =
    { Cost_model.check_miss = 0.0; ni_miss = 0.50; unpin = 0.49; pin_pages = 1.0 }
  in
  Alcotest.(check (float 0.2)) "Intr FFT 1K" 21.7
    (Cost_model.intr_lookup_us m intr_rates)

let test_prefetch_amortises () =
  (* Bigger prefetch raises per-miss cost but the caller's miss rate
     would drop; at equal rates the cost must grow sub-linearly. *)
  let rates =
    { Cost_model.check_miss = 0.0; ni_miss = 1.0; unpin = 0.0; pin_pages = 1.0 }
  in
  let c1 = Cost_model.utlb_lookup_us m ~prefetch:1 rates in
  let c32 = Cost_model.utlb_lookup_us m ~prefetch:32 rates in
  Alcotest.(check bool) "32-entry fetch < 2x 1-entry" true
    (c32 -. c1 < Cost_model.ni_miss_us m ~entries:1 *. 1.0)

let test_multi_page_pin_amortisation () =
  (* The per-page cost of a 16-page pin is far below a 1-page pin. *)
  let single = Cost_model.pin_us m ~pages:1 in
  let sixteen = Cost_model.pin_us m ~pages:16 /. 16.0 in
  Alcotest.(check bool) "amortisation" true (sixteen < single /. 4.0)

let test_check_bounds () =
  Alcotest.(check (float 1e-9)) "check min constant" 0.2
    (Cost_model.check_min_us m ~pages:32);
  Alcotest.(check bool) "check max grows" true
    (Cost_model.check_max_us m ~pages:32 > Cost_model.check_max_us m ~pages:1)

let test_invalid_args () =
  Alcotest.check_raises "pin 0 pages"
    (Invalid_argument "Cost_model: pages must be >= 1") (fun () ->
      ignore (Cost_model.pin_us m ~pages:0))

let prop_equation_monotone_in_rates =
  QCheck.Test.make ~name:"lookup cost is monotone in miss rates" ~count:200
    QCheck.(pair (float_range 0.0 0.5) (float_range 0.0 0.5))
    (fun (r1, r2) ->
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      let mk r =
        { Cost_model.check_miss = r; ni_miss = r; unpin = r; pin_pages = 1.0 }
      in
      Cost_model.utlb_lookup_us m ~prefetch:1 (mk lo)
      <= Cost_model.utlb_lookup_us m ~prefetch:1 (mk hi) +. 1e-9
      && Cost_model.intr_lookup_us m (mk lo)
         <= Cost_model.intr_lookup_us m (mk hi) +. 1e-9)

let suite =
  [
    Alcotest.test_case "Table 1 anchors" `Quick test_table1_anchors;
    Alcotest.test_case "Table 2 anchors" `Quick test_table2_anchors;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "Table 6 Barnes@1K" `Quick test_table6_barnes_1k;
    Alcotest.test_case "Table 6 FFT@1K" `Quick test_table6_fft_1k;
    Alcotest.test_case "prefetch amortises" `Quick test_prefetch_amortises;
    Alcotest.test_case "multi-page pin amortisation" `Quick
      test_multi_page_pin_amortisation;
    Alcotest.test_case "check bounds" `Quick test_check_bounds;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest prop_equation_monotone_in_rates;
  ]
