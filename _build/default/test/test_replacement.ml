open Utlb
module Rng = Utlb_sim.Rng

let make policy = Replacement.create policy ~rng:(Rng.create ~seed:13L)

let test_lru_order () =
  let t = make Replacement.Lru in
  List.iter (Replacement.insert t) [ 1; 2; 3 ];
  Replacement.touch t 1;
  (* Now 2 is least recent. *)
  Alcotest.(check (option int)) "lru victim" (Some 2)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "then 3" (Some 3)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "then 1" (Some 1)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "empty" None (Replacement.select_victim t ())

let test_mru_order () =
  let t = make Replacement.Mru in
  List.iter (Replacement.insert t) [ 1; 2; 3 ];
  Replacement.touch t 2;
  Alcotest.(check (option int)) "mru victim" (Some 2)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "next most recent" (Some 3)
    (Replacement.select_victim t ())

let test_lfu_order () =
  let t = make Replacement.Lfu in
  List.iter (Replacement.insert t) [ 1; 2; 3 ];
  Replacement.touch t 1;
  Replacement.touch t 1;
  Replacement.touch t 3;
  (* Uses: 1 -> 3, 2 -> 1, 3 -> 2. *)
  Alcotest.(check (option int)) "lfu victim" (Some 2)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "then 3" (Some 3)
    (Replacement.select_victim t ())

let test_mfu_order () =
  let t = make Replacement.Mfu in
  List.iter (Replacement.insert t) [ 1; 2; 3 ];
  Replacement.touch t 1;
  Replacement.touch t 1;
  Alcotest.(check (option int)) "mfu victim" (Some 1)
    (Replacement.select_victim t ())

let test_random_picks_tracked () =
  let t = make Replacement.Random in
  List.iter (Replacement.insert t) [ 10; 20; 30 ];
  (match Replacement.select_victim t () with
  | Some v -> Alcotest.(check bool) "tracked page" true (List.mem v [ 10; 20; 30 ])
  | None -> Alcotest.fail "victim expected");
  Alcotest.(check int) "size decremented" 2 (Replacement.size t)

let test_protect () =
  let t = make Replacement.Lru in
  List.iter (Replacement.insert t) [ 1; 2; 3 ];
  (* Protect the two least-recent pages. *)
  Alcotest.(check (option int)) "skips protected" (Some 3)
    (Replacement.select_victim t ~protect:(fun p -> p < 3) ());
  Alcotest.(check (option int)) "all protected" None
    (Replacement.select_victim t ~protect:(fun _ -> true) ());
  Alcotest.(check int) "protected remain tracked" 2 (Replacement.size t)

let test_protect_then_unprotected () =
  (* After a protected pass, the stashed entries must still be evictable. *)
  let t = make Replacement.Lru in
  List.iter (Replacement.insert t) [ 1; 2 ];
  Alcotest.(check (option int)) "none available" None
    (Replacement.select_victim t ~protect:(fun _ -> true) ());
  Alcotest.(check (option int)) "available again" (Some 1)
    (Replacement.select_victim t ());
  Alcotest.(check (option int)) "and the other" (Some 2)
    (Replacement.select_victim t ())

let test_remove () =
  let t = make Replacement.Lru in
  List.iter (Replacement.insert t) [ 1; 2 ];
  Replacement.remove t 1;
  Alcotest.(check bool) "gone" false (Replacement.mem t 1);
  Alcotest.(check (option int)) "victim skips removed" (Some 2)
    (Replacement.select_victim t ())

let test_double_insert_rejected () =
  let t = make Replacement.Lru in
  Replacement.insert t 1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Replacement.insert: page already tracked") (fun () ->
      Replacement.insert t 1)

let test_touch_untracked_ignored () =
  let t = make Replacement.Lru in
  Replacement.touch t 42;
  Alcotest.(check int) "still empty" 0 (Replacement.size t)

let test_policy_of_string () =
  Alcotest.(check bool) "lru" true
    (Replacement.policy_of_string "LRU" = Some Replacement.Lru);
  Alcotest.(check bool) "unknown" true
    (Replacement.policy_of_string "fifo" = None)

let prop_victims_are_tracked =
  QCheck.Test.make ~name:"every victim was a tracked page" ~count:100
    QCheck.(pair (int_bound 4) (list_of_size Gen.(1 -- 60) (int_bound 40)))
    (fun (policy_idx, pages) ->
      let policy = List.nth Replacement.all_policies policy_idx in
      let t = make policy in
      let tracked = Hashtbl.create 16 in
      List.iter
        (fun p ->
          if Hashtbl.mem tracked p then Replacement.touch t p
          else begin
            Replacement.insert t p;
            Hashtbl.replace tracked p ()
          end)
        pages;
      let ok = ref true in
      let continue = ref true in
      while !continue do
        match Replacement.select_victim t () with
        | None -> continue := false
        | Some v ->
          if not (Hashtbl.mem tracked v) then ok := false;
          Hashtbl.remove tracked v
      done;
      !ok && Hashtbl.length tracked = 0)

let prop_lru_evicts_oldest =
  QCheck.Test.make ~name:"LRU victim is least recently used" ~count:100
    QCheck.(list_of_size Gen.(2 -- 40) (int_bound 20))
    (fun touches ->
      let t = make Replacement.Lru in
      let order = ref [] in
      (* model: list from least to most recent *)
      List.iter
        (fun p ->
          if Replacement.mem t p then Replacement.touch t p
          else Replacement.insert t p;
          order := List.filter (fun q -> q <> p) !order @ [ p ])
        touches;
      match (Replacement.select_victim t (), !order) with
      | Some v, oldest :: _ -> v = oldest
      | None, [] -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "lru order" `Quick test_lru_order;
    Alcotest.test_case "mru order" `Quick test_mru_order;
    Alcotest.test_case "lfu order" `Quick test_lfu_order;
    Alcotest.test_case "mfu order" `Quick test_mfu_order;
    Alcotest.test_case "random picks tracked" `Quick test_random_picks_tracked;
    Alcotest.test_case "protect predicate" `Quick test_protect;
    Alcotest.test_case "protect then release" `Quick test_protect_then_unprotected;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "double insert rejected" `Quick test_double_insert_rejected;
    Alcotest.test_case "touch untracked" `Quick test_touch_untracked_ignored;
    Alcotest.test_case "policy of string" `Quick test_policy_of_string;
    QCheck_alcotest.to_alcotest prop_victims_are_tracked;
    QCheck_alcotest.to_alcotest prop_lru_evicts_oldest;
  ]
